"""Wrap-aware, fault-tolerant RAPL energy accumulation.

``MSR_PKG_ENERGY_STATUS`` counts energy in 15.3 microJoule units in a
32-bit register, so it wraps roughly every

    2**32 * 15.3e-6 J  ~=  65.7 kJ  ~=  7-15 minutes per socket

at the paper's observed power draws ("Since the counter is only 32 bits
wide it can wrap around in a few minutes.  The measurement tools monitor
the number of wraps to obtain valid application energy consumption
numbers", Section II-A).  :class:`EnergyReader` is that measurement tool:
it polls the raw register, computes modular deltas, and accumulates them
into a monotonic Joule total.  Its correctness precondition — at most one
wrap between polls — is guaranteed by the RCRdaemon's 0.1 s cadence.

The hardened path tolerates the failure modes a real ``/dev/cpu/*/msr``
chain exhibits:

* **transient read failures** (:class:`~repro.errors.MSRReadError`, the
  ``EIO`` analog) are retried up to a budget; exhausted retries fall back
  to rate-based interpolation;
* **stuck counters** (the register repeating a stale value while energy is
  clearly flowing) are detected against a running rate estimate and
  bridged by interpolation, with the outstanding interpolated ticks
  reconciled against the next good read so nothing double-counts;
* **missed wraps** (a poll gap long enough that the at-most-one-wrap
  precondition fails) are suspected from the rate estimate and recovered
  by folding the missing full periods back in.

Every poll reports a :class:`SampleQuality` flag so downstream consumers
(the RCRdaemon, the throttle controller) can distinguish measured truth
from bridged estimates.  With no faults injected the hardened path is
numerically identical to the original reader: one register read per poll,
the same modular delta, the same wrap count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import MeasurementError, MSRReadError
from repro.hw.msr import MSR_PKG_ENERGY_STATUS, MSRFile
from repro.units import (
    RAPL_COUNTER_MODULUS,
    rapl_delta_and_wrap,
    rapl_ticks_to_joules,
)


class SampleQuality(enum.IntEnum):
    """Provenance of one energy sample, ordered from best to worst."""

    #: Clean read, clean delta.
    OK = 0
    #: Read succeeded only after one or more retries; value is measured.
    RETRIED = 1
    #: Read failed or counter stuck; delta is a rate-based estimate.
    INTERPOLATED = 2
    #: Poll gap long enough that full counter periods may have been missed;
    #: delta includes recovered wraps and must be treated as an estimate.
    WRAP_SUSPECT = 3


@dataclass(frozen=True)
class EnergySample:
    """One hardened poll of a socket's energy counter."""

    #: Cumulative Joules since the reader was created (monotonic).
    total_joules: float
    #: Ticks attributed to this poll window (measured or estimated).
    delta_ticks: int
    quality: SampleQuality
    #: Read attempts beyond the first for this poll.
    retries: int
    #: Observed wrap count so far (recovered wraps included).
    wraps: int

    @property
    def good(self) -> bool:
        """True when the sample is measured rather than estimated."""
        return self.quality in (SampleQuality.OK, SampleQuality.RETRIED)


#: Minimum expected progress (ticks) before a repeated register value is
#: treated as a stuck counter rather than a genuinely idle window.
_STUCK_MIN_TICKS = 16.0

#: Fraction of a full counter period of expected progress beyond which the
#: at-most-one-wrap precondition is considered violated.
_WRAP_SUSPECT_FRAC = 0.5


class EnergyReader:
    """Monotonic energy accumulator over one socket's wrapping counter."""

    def __init__(self, msr: MSRFile, socket: int, *, retry_limit: int = 3) -> None:
        if retry_limit < 0:
            raise MeasurementError(f"retry_limit must be >= 0, got {retry_limit!r}")
        self._msr = msr
        self.socket = socket
        self.retry_limit = retry_limit
        self._total_ticks = 0
        self._wraps = 0
        #: Running estimate of the counter rate (ticks/s) from good polls.
        self._rate_ticks_per_s: Optional[float] = None
        #: Interpolated ticks not yet reconciled against a good read.
        self._interp_ticks = 0
        #: Diagnostics: total retries, polls bridged by interpolation,
        #: stuck polls detected, and wraps recovered from suspected misses.
        self.retries_total = 0
        self.interpolated_polls = 0
        self.stuck_polls = 0
        self.wraps_recovered = 0
        #: Quality histogram over all polls.
        self.quality_counts: dict[SampleQuality, int] = {q: 0 for q in SampleQuality}
        # The baseline read is retried like any other; if the register is
        # unreadable even then, start from 0 — the first successful poll
        # re-anchors at the true register value and only the (unknowable)
        # pre-attach energy is misattributed to the first window.
        raw, _retries = self._read_with_retry()
        self._last_raw = raw if raw is not None else 0

    def _read_raw(self) -> int:
        return self._msr.read_package(
            self.socket, MSR_PKG_ENERGY_STATUS, privileged=True
        )

    @property
    def wraps(self) -> int:
        """Number of counter wraps observed so far."""
        return self._wraps

    @property
    def total_joules(self) -> float:
        """Energy accumulated since this reader was created, Joules."""
        return rapl_ticks_to_joules(self._total_ticks)

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def poll(self) -> float:
        """Read the counter, fold in the (modular) delta, return the total.

        Must be called at least once per counter period (~10 minutes at
        100 W) or wraps will be missed — the same contract real RAPL
        clients live under.  This is the legacy interface; it is exactly
        ``poll_sample().total_joules``.
        """
        return self.poll_sample().total_joules

    def poll_sample(self, window_s: Optional[float] = None) -> EnergySample:
        """Hardened poll: retry, detect stuck counters, flag quality.

        ``window_s`` is the caller's estimate of the time since the last
        poll; when provided it enables stuck-counter detection and
        missed-wrap suspicion (both need an expected-progress baseline).
        """
        raw, retries = self._read_with_retry()
        if raw is None:
            sample = self._interpolate(window_s, retries)
        else:
            sample = self._ingest(raw, retries, window_s)
        self.quality_counts[sample.quality] += 1
        return sample

    def _read_with_retry(self) -> tuple[Optional[int], int]:
        """Read the register, retrying transient failures up to the budget.

        In simulation the retries are immediate (the backoff a real client
        would sleep through has no power cost worth modelling); the retry
        *count* is what matters for quality accounting.
        """
        # Fast path: with no faults injected the first read always
        # succeeds, so the common case is one try and no loop setup.
        try:
            return self._read_raw(), 0
        except MSRReadError:
            retries = 1
            self.retries_total += 1
        for _attempt in range(self.retry_limit):
            try:
                return self._read_raw(), retries
            except MSRReadError:
                retries += 1
                self.retries_total += 1
        return None, retries

    def _expected_ticks(self, window_s: Optional[float]) -> Optional[float]:
        if window_s is None or window_s <= 0 or self._rate_ticks_per_s is None:
            return None
        return self._rate_ticks_per_s * window_s

    def _interpolate(self, window_s: Optional[float], retries: int) -> EnergySample:
        """Bridge a poll whose read failed outright with a rate estimate."""
        expected = self._expected_ticks(window_s)
        delta = int(round(expected)) if expected is not None else 0
        self._total_ticks += delta
        self._interp_ticks += delta
        self.interpolated_polls += 1
        # _last_raw is left untouched: the next successful read computes
        # the true modular delta across the outage and _interp_ticks is
        # subtracted so the bridged energy is not counted twice.
        return EnergySample(
            total_joules=self.total_joules,
            delta_ticks=delta,
            quality=SampleQuality.INTERPOLATED,
            retries=retries,
            wraps=self._wraps,
        )

    def _ingest(
        self, raw: int, retries: int, window_s: Optional[float]
    ) -> EnergySample:
        """Fold one successful register read into the running total."""
        delta, wrapped = rapl_delta_and_wrap(self._last_raw, raw)
        expected = self._expected_ticks(window_s)

        # Missed-wrap suspicion: the window was long enough (at the
        # observed rate) that full counter periods may have elapsed.  The
        # missing periods are recovered by rounding the shortfall to whole
        # wraps — this also handles the exact-wrap edge case where
        # raw == last_raw after precisely one period (delta == 0).
        if expected is not None and expected >= _WRAP_SUSPECT_FRAC * RAPL_COUNTER_MODULUS:
            missed = max(0, int(round((expected - delta) / RAPL_COUNTER_MODULUS)))
            self._last_raw = raw
            self._wraps += missed + (1 if wrapped else 0)
            self.wraps_recovered += missed
            contribution = delta + missed * RAPL_COUNTER_MODULUS
            contribution = max(0, contribution - self._interp_ticks)
            self._interp_ticks = 0
            self._total_ticks += contribution
            return EnergySample(
                total_joules=self.total_joules,
                delta_ticks=contribution,
                quality=SampleQuality.WRAP_SUSPECT,
                retries=retries,
                wraps=self._wraps,
            )

        # Stuck-counter detection: no register progress over a window in
        # which the established rate predicts clearly-measurable energy.
        # (Uncore power alone is ~20 W per socket, so a genuinely flat
        # window at daemon cadence is never silent on real progress.)
        if (
            delta == 0
            and expected is not None
            and expected >= _STUCK_MIN_TICKS
        ):
            self.stuck_polls += 1
            est = int(round(expected))
            self._total_ticks += est
            self._interp_ticks += est
            self.interpolated_polls += 1
            return EnergySample(
                total_joules=self.total_joules,
                delta_ticks=est,
                quality=SampleQuality.INTERPOLATED,
                retries=retries,
                wraps=self._wraps,
            )

        # Clean (or merely retried) sample.
        self._last_raw = raw
        if wrapped:
            self._wraps += 1
        reconciling = self._interp_ticks > 0
        contribution = max(0, delta - self._interp_ticks)
        self._interp_ticks = 0
        self._total_ticks += contribution
        # A reconciliation read's delta spans the whole bridged outage,
        # not one window — feeding it into the rate estimate would inflate
        # the rate by the outage length and over-credit the next outage.
        if window_s is not None and window_s > 0 and delta > 0 and not reconciling:
            self._rate_ticks_per_s = delta / window_s
        quality = SampleQuality.RETRIED if retries > 0 else SampleQuality.OK
        return EnergySample(
            total_joules=self.total_joules,
            delta_ticks=contribution,
            quality=quality,
            retries=retries,
            wraps=self._wraps,
        )


class MultiSocketEnergyReader:
    """Convenience bundle of one :class:`EnergyReader` per socket."""

    def __init__(self, msr: MSRFile, sockets: int, *, retry_limit: int = 3) -> None:
        if sockets <= 0:
            raise MeasurementError(f"sockets must be positive, got {sockets!r}")
        self.readers = [
            EnergyReader(msr, s, retry_limit=retry_limit) for s in range(sockets)
        ]

    def poll(self) -> list[float]:
        """Poll every socket; returns per-socket cumulative Joules."""
        return [reader.poll() for reader in self.readers]

    def poll_samples(self, window_s: Optional[float] = None) -> list[EnergySample]:
        """Hardened poll of every socket."""
        return [reader.poll_sample(window_s) for reader in self.readers]

    @property
    def totals_j(self) -> list[float]:
        """Per-socket cumulative Joules at the last poll."""
        return [reader.total_joules for reader in self.readers]

    @property
    def total_j(self) -> float:
        """Whole-node cumulative Joules at the last poll."""
        return sum(reader.total_joules for reader in self.readers)
