"""Measurement utilities: wrap-aware RAPL energy reading and reports.

These are the *client-side* pieces any real RAPL tooling needs and the
paper's measurement infrastructure implements: accumulating a 32-bit
wrapping energy counter into a monotonic Joule total
(:class:`~repro.measure.energy.EnergyReader`), and formatting region
reports (:mod:`repro.measure.report`).
"""

from repro.measure.energy import (
    EnergyReader,
    EnergySample,
    MultiSocketEnergyReader,
    SampleQuality,
)
from repro.measure.report import MeasurementRow, format_measurement_table

__all__ = [
    "EnergyReader",
    "EnergySample",
    "MultiSocketEnergyReader",
    "SampleQuality",
    "MeasurementRow",
    "format_measurement_table",
]
