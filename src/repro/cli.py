"""``repro-paper`` command-line interface.

Subcommands map one-to-one to the paper's evaluation artifacts:

    repro-paper list                       # applications in the registry
    repro-paper run APP [options]          # one measured execution
    repro-paper table1                     # Table I
    repro-paper table2 / table3            # Tables II / III
    repro-paper figure fig1..fig4          # Figures 1-4
    repro-paper throttle [APP]             # Tables IV-VII
    repro-paper sensitivity [APP]          # policy-threshold sweep
    repro-paper faultsweep                 # robustness: savings under faults
    repro-paper metersweep                 # meter backends x cadence x faults
    repro-paper sched [options]            # one scheduled cluster run
    repro-paper schedsweep                 # placement policy x budget table
    repro-paper coschedsweep               # contention profiling sweep
    repro-paper validate [--differential]  # physics-invariant sanitizer sweep
    repro-paper coldstart                  # footnote 2
    repro-paper reproduce [-o FILE]        # full EXPERIMENTS.md
    repro-paper cache info|clear           # the harness result cache
    repro-paper recalibrate                # refresh residual corrections
    repro-paper serve [options]            # always-on experiment service
    repro-paper submit APP [options]       # send one spec to the service
    repro-paper obs report [options]       # live service metrics + spans

Every sweep command accepts the shared harness flags: ``--workers N``
(process-parallel execution), ``--no-cache`` / ``--cache-dir DIR``
(digest-keyed result cache), ``--events FILE`` (JSONL telemetry log)
and ``--quiet`` (suppress the progress renderer).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Iterator

from repro.apps import APP_REGISTRY, list_apps


# ----------------------------------------------------------------- harness
def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    """The harness flags shared by every sweep subcommand."""
    group = parser.add_argument_group("harness")
    group.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (default: 1, serial)")
    group.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache root (default: ~/.cache/repro-harness "
                            "or $REPRO_CACHE_DIR)")
    group.add_argument("--events", default=None, metavar="FILE",
                       help="append structured telemetry events to FILE (JSONL)")
    group.add_argument("--quiet", action="store_true",
                       help="suppress the per-run progress renderer")
    group.add_argument("--metrics", default=None, metavar="FILE",
                       help="dump a repro.obs metrics snapshot (JSON) to FILE "
                            "when the sweep finishes")
    group.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome-trace (about:tracing / Perfetto) "
                            "JSON of the sweep's runs to FILE")


@contextlib.contextmanager
def _make_harness(args: argparse.Namespace) -> Iterator["BatchExecutor"]:
    """Build the BatchExecutor an argparse namespace describes."""
    from repro.harness import (
        BatchExecutor,
        JsonlSink,
        ProgressSink,
        ResultCache,
        TelemetryBus,
    )

    bus = TelemetryBus()
    if not args.quiet:
        bus.subscribe(ProgressSink())
    jsonl = None
    if args.events:
        jsonl = JsonlSink(args.events)
        bus.subscribe(jsonl)
    # Observability is strictly opt-in from the CLI: no registry object
    # even exists unless a flag asks for one, so the default path stays
    # instrumentation-free.
    registry = tracer = None
    if getattr(args, "metrics", None):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    if getattr(args, "trace", None):
        from repro.obs import SpanRecorder

        tracer = SpanRecorder()
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    try:
        yield BatchExecutor(workers=args.workers, cache=cache, bus=bus,
                            registry=registry, tracer=tracer)
    finally:
        if jsonl is not None:
            jsonl.close()
        if registry is not None:
            _dump_metrics(registry, args.metrics)
        if tracer is not None:
            _dump_trace(tracer, args.trace)


def _dump_metrics(registry: "MetricsRegistry", path: str) -> None:
    import json

    snapshot = registry.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot.to_json_obj(), handle, sort_keys=True)
        handle.write("\n")
    print(f"metrics snapshot written to {path}", file=sys.stderr)


def _dump_trace(tracer: "SpanRecorder", path: str) -> None:
    events = tracer.write_chrome_trace(path)
    print(f"trace with {events} span(s) written to {path} "
          f"(load via chrome://tracing or ui.perfetto.dev)", file=sys.stderr)


# ------------------------------------------------------------ subcommands
def _cmd_list(args: argparse.Namespace) -> int:
    for name in list_apps():
        info = APP_REGISTRY[name]
        print(f"{name:24s} [{info.group:8s}] {info.description}")
    return 0


def _fault_spec(text: str):
    """argparse type for --faults: parse eagerly, fail as a usage error."""
    from repro.errors import FaultConfigError
    from repro.faults import parse_fault_spec

    try:
        return parse_fault_spec(text)
    except FaultConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness import RunSpec, execute_spec

    spec = RunSpec(
        args.app,
        compiler=args.compiler,
        optlevel=args.optlevel,
        threads=args.threads,
        throttle=args.throttle,
        payload=args.payload,
        seed=args.seed,
        faults=args.faults,  # parsed by argparse (_fault_spec)
    )
    record = execute_spec(spec)
    print(record.region)
    run = record.run
    print(
        f"tasks: {run.tasks_completed}  steals: {run.steals}  "
        f"spins: {run.spin_entries}  throttle on/off: "
        f"{run.throttle_activations}/{run.throttle_deactivations}"
    )
    if record.fault_stats is not None:
        from repro.measure.energy import SampleQuality

        injected = ", ".join(
            f"{kind}={count}" for kind, count in record.fault_stats.items() if count
        )
        quality = record.quality_counts
        qtext = ", ".join(f"{q.name}={quality.get(q, 0)}" for q in SampleQuality)
        print(f"faults injected: {injected or 'none'}")
        print(f"sample quality: {qtext}  "
              f"late/missed ticks: {record.late_ticks}/{record.missed_ticks}")
    if args.payload:
        print(f"result: {record.result_repr}")
    return 0


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from repro.errors import FaultConfigError, UnknownApplicationError
    from repro.experiments.faultsweep import (
        DEFAULT_APPS,
        DEFAULT_PROFILES,
        run_fault_sweep,
    )

    apps = tuple(args.apps.split(",")) if args.apps else DEFAULT_APPS
    profiles = tuple(args.profiles.split(",")) if args.profiles else DEFAULT_PROFILES
    if args.quick:
        apps = apps[:1]
        profiles = tuple(p for p in profiles if p in ("none", "stall", "default"))
    try:
        with _make_harness(args) as harness:
            result = run_fault_sweep(apps, profiles, seed=args.seed, harness=harness)
    except (FaultConfigError, UnknownApplicationError) as exc:
        print(f"repro-paper faultsweep: error: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    return 0


def _cmd_metersweep(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError, FaultConfigError, UnknownApplicationError
    from repro.experiments.metersweep import (
        DEFAULT_APP,
        DEFAULT_BACKENDS,
        DEFAULT_PERIODS,
        DEFAULT_PROFILES,
        QUICK_PERIODS,
        QUICK_PROFILES,
        run_meter_sweep,
    )

    app = args.app if args.app else DEFAULT_APP
    backends = (
        tuple(args.backends.split(",")) if args.backends else DEFAULT_BACKENDS
    )
    periods = (
        tuple(float(p) for p in args.periods.split(","))
        if args.periods else DEFAULT_PERIODS
    )
    profiles = (
        tuple(args.profiles.split(",")) if args.profiles else DEFAULT_PROFILES
    )
    if args.quick:
        periods = QUICK_PERIODS
        profiles = QUICK_PROFILES
    try:
        with _make_harness(args) as harness:
            result = run_meter_sweep(
                app, backends, periods, profiles,
                read_cost_s=args.read_cost,
                seed=args.seed, harness=harness,
            )
    except (
        ConfigError, FaultConfigError, UnknownApplicationError, ValueError
    ) as exc:
        print(f"repro-paper metersweep: error: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    return 0 if result.ok else 1


def _cmd_sched(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.harness import JsonlSink, TelemetryBus
    from repro.sched import SchedSpec
    from repro.sched.telemetry import SchedProgressSink

    bus = TelemetryBus()
    if not args.quiet:
        bus.subscribe(SchedProgressSink())
    jsonl = None
    if args.events:
        jsonl = JsonlSink(args.events)
        bus.subscribe(jsonl)
    registry = tracer = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    if args.trace:
        from repro.obs import SpanRecorder

        # Sim-time spans: no wall clock, timestamps come from the
        # engine via explicit ``at=`` so the trace shows simulated time.
        tracer = SpanRecorder(clock=lambda: 0.0)
    try:
        spec = SchedSpec(
            profile=args.profile,
            policy=args.policy,
            nodes=args.nodes,
            budget_w=args.budget,
            jobs=args.jobs,
            rate_jobs_per_s=args.rate,
            queue_depth=args.queue_depth,
            seed=args.seed,
            time_limit_s=args.time_limit,
            execution=args.execution,
            retain_jobs=not args.no_retain,
            segment_jobs=args.segment_jobs,
        )
        result = spec.execute(bus=bus, checkpoint_dir=args.checkpoint_dir,
                              registry=registry, tracer=tracer)
    except ReproError as exc:
        print(f"repro-paper sched: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if jsonl is not None:
            jsonl.close()
    if registry is not None:
        _dump_metrics(registry, args.metrics)
    if tracer is not None:
        _dump_trace(tracer, args.trace)
    print(result.format())
    return 0 if not result.budget_violations else 1


def _cmd_schedsweep(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.experiments.schedsweep import (
        DEFAULT_BUDGETS_W,
        DEFAULT_POLICIES,
        DEFAULT_PROFILES,
        run_sched_sweep,
    )

    policies = tuple(args.policies.split(",")) if args.policies else DEFAULT_POLICIES
    profiles = tuple(args.profiles.split(",")) if args.profiles else DEFAULT_PROFILES
    budgets = (
        tuple(float(b) for b in args.budgets.split(","))
        if args.budgets else DEFAULT_BUDGETS_W
    )
    jobs = args.jobs
    if args.quick:
        policies = policies[:2]
        profiles = profiles[:1]
        budgets = budgets[:1]
        jobs = min(jobs, 6)
    try:
        with _make_harness(args) as harness:
            result = run_sched_sweep(
                profiles, policies, budgets,
                nodes=args.nodes, jobs=jobs, seed=args.seed, harness=harness,
            )
            tournament = None
            if not args.quick and not args.no_tournament:
                from repro.experiments.schedsweep import run_policy_tournament

                tournament = run_policy_tournament(
                    nodes=args.nodes, seed=args.seed, harness=harness,
                )
    except ReproError as exc:
        print(f"repro-paper schedsweep: error: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    if tournament is not None:
        print()
        print(tournament.format())
    return 0


def _cmd_coschedsweep(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.experiments.coschedsweep import (
        DEFAULT_APPS,
        DEFAULT_INJECTORS,
        DEFAULT_LEVELS,
        run_cosched_sweep,
    )

    apps = tuple(args.apps.split(",")) if args.apps else DEFAULT_APPS
    injectors = (
        tuple(args.injectors.split(",")) if args.injectors
        else DEFAULT_INJECTORS
    )
    levels = (
        tuple(float(level) for level in args.levels.split(","))
        if args.levels else DEFAULT_LEVELS
    )
    if args.quick:
        apps = apps[:2]
        injectors = injectors[:1]
        levels = levels[-1:]
    try:
        with _make_harness(args) as harness:
            result = run_cosched_sweep(
                apps, injectors, levels,
                threads=args.threads, scale=args.scale,
                inj_scale=args.inj_scale, seed=args.seed, harness=harness,
            )
    except (ReproError, ValueError) as exc:
        print(f"repro-paper coschedsweep: error: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    if args.output:
        result.store.save(args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    with _make_harness(args) as harness:
        print(run_table1(harness=harness).format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table23 import run_table2

    with _make_harness(args) as harness:
        print(run_table2(harness=harness).format())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table23 import run_table3

    with _make_harness(args) as harness:
        print(run_table3(harness=harness).format())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import run_figure

    with _make_harness(args) as harness:
        print(run_figure(args.figure, harness=harness).format())
    return 0


def _cmd_throttle(args: argparse.Namespace) -> int:
    from repro.experiments.throttling import run_all_throttle_tables, run_throttle_table

    with _make_harness(args) as harness:
        if args.app:
            print(run_throttle_table(args.app, harness=harness).format())
        else:
            for result in run_all_throttle_tables(harness=harness).values():
                print(result.format())
                print()
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import run_sensitivity

    with _make_harness(args) as harness:
        print(run_sensitivity(args.app, harness=harness).format())
    return 0


def _cmd_coldstart(args: argparse.Namespace) -> int:
    from repro.experiments.coldstart import run_cold_start
    from repro.harness import telemetry as tel

    bus = tel.TelemetryBus() if args.quiet else tel.stderr_bus()
    print(run_cold_start(bus=bus).format())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.compare import generate_experiments_report

    with _make_harness(args) as harness:
        text = generate_experiments_report(
            output=args.output, quick=args.quick, harness=harness
        )
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache

    cache = ResultCache(root=args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    if args.action == "migrate":
        stats = cache.migrate()
        print(f"migrated {cache.root} to the sharded layout: "
              f"{stats['objects_moved']} payload(s) moved, "
              f"{stats['ledger_lines']} legacy ledger line(s) resharded")
        return 0
    if args.action == "compact":
        stats = cache.compact()
        print(f"compacted {stats['shards']} shard ledger(s): "
              f"{stats['lines_before']} -> {stats['lines_after']} line(s)")
        return 0
    if args.action == "reindex":
        stats = cache.reindex()
        print(f"reindexed {cache.root}: {stats['digests']} digest(s), "
              f"{stats['puts']} put line(s)")
        return 0
    info = cache.info()
    print(f"root:           {info['root']}")
    print(f"code stamp:     {info['stamp']}")
    print(f"entries:        {info['entries']} "
          f"({info['current_stamp_entries']} under the current stamp)")
    print(f"size:           {info['bytes']} bytes")
    for stamp, count in sorted(info["stamps"].items()):
        marker = "  <-- current" if stamp == info["stamp"] else ""
        print(f"  stamp {stamp}: {count} entries{marker}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import (
        export_figure_csv,
        export_optlevels_csv,
        export_table1_csv,
        export_throttle_json,
    )

    what = args.artifact
    out = args.output
    with _make_harness(args) as harness:
        if what.startswith("fig"):
            from repro.experiments.figures import run_figure

            text = export_figure_csv(run_figure(what, harness=harness), out)
        elif what == "table1":
            from repro.experiments.table1 import run_table1

            text = export_table1_csv(run_table1(harness=harness), out)
        elif what in ("table2", "table3"):
            from repro.experiments.table23 import run_opt_levels

            compiler = "gcc" if what == "table2" else "icc"
            text = export_optlevels_csv(
                run_opt_levels(compiler, harness=harness), out
            )
        else:
            from repro.experiments.throttling import run_throttle_table

            app = {
                "table4": "lulesh",
                "table5": "dijkstra",
                "table6": "bots-health",
                "table7": "bots-strassen",
            }[what]
            text = export_throttle_json(run_throttle_table(app, harness=harness), out)
    if out:
        print(f"wrote {out}")
    else:
        print(text)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness import JsonlSink, ProgressSink, TelemetryBus
    from repro.validate import (
        corpus,
        differential_specs,
        differential_sweep,
        run_cluster_validation,
        run_cosched_validation,
        run_scale_validation,
        run_validation_sweep,
    )

    bus = TelemetryBus()
    if not args.quiet:
        bus.subscribe(ProgressSink())
    jsonl = None
    if args.events:
        jsonl = JsonlSink(args.events)
        bus.subscribe(jsonl)
    ok = True
    try:
        if not args.differential_only:
            sweep = run_validation_sweep(
                corpus(quick=args.quick), workers=args.workers, bus=bus
            )
            print(sweep.format())
            ok = ok and sweep.ok
            cluster = run_cluster_validation(quick=args.quick, bus=bus)
            print()
            print(cluster.format())
            ok = ok and cluster.ok
            scale = run_scale_validation(quick=args.quick)
            print()
            print(scale.format())
            ok = ok and scale.ok
            cosched = run_cosched_validation(quick=args.quick)
            print()
            print(cosched.format())
            ok = ok and cosched.ok
        if args.differential or args.differential_only:
            diff = differential_sweep(
                differential_specs(), workers=max(2, args.workers)
            )
            print()
            print(diff.format())
            ok = ok and diff.ok
    finally:
        if jsonl is not None:
            jsonl.close()
    return 0 if ok else 1


def _cmd_recalibrate(args: argparse.Namespace) -> int:
    from repro.experiments.recalibrate import compute_residuals, write_residuals_module

    corrections = compute_residuals(verbose=True)
    path = write_residuals_module(corrections)
    print(f"wrote {len(corrections)} corrections to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve_from_args

    return serve_from_args(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.harness import RunSpec
    from repro.service.client import ServiceClient

    spec = RunSpec(
        args.app,
        compiler=args.compiler,
        optlevel=args.optlevel,
        threads=args.threads,
        throttle=args.throttle,
        payload=args.payload,
        scale=args.scale,
        seed=args.seed,
        faults=args.faults,
    )
    try:
        with ServiceClient(host=args.host, port=args.port,
                           name=args.client) as client:
            if args.no_wait:
                response = client.submit(spec)
                if not response.get("ok"):
                    print(f"shed: {response.get('error')} "
                          f"(retry_after_s={response.get('retry_after_s', 0)})",
                          file=sys.stderr)
                    return 1
            else:
                response = client.submit_and_wait(
                    spec, timeout_s=args.timeout)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("state") in ("done", "queued", "running") else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.obs import render_metrics_frame
    from repro.service.client import ServiceClient

    try:
        with ServiceClient(host=args.host, port=args.port,
                           name="obs-report") as client:
            frame = client.metrics()
    except ServiceError as exc:
        print(f"obs report failed: {exc}", file=sys.stderr)
        return 1
    if args.prometheus:
        # Raw text exposition, suitable for piping to promtool et al.
        sys.stdout.write(frame["prometheus"])
        return 0
    if args.json:
        print(json.dumps(frame["snapshot"], indent=2, sort_keys=True))
        return 0
    print(render_metrics_frame(frame))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduction of 'Power Measurement and Concurrency Throttling "
            "for Energy Reduction in OpenMP Programs' on a simulated "
            "two-socket Sandybridge node."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark applications").set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one application with measurement")
    run_p.add_argument("app", choices=sorted(APP_REGISTRY))
    run_p.add_argument("--compiler", default="gcc", choices=["gcc", "icc", "maestro"])
    run_p.add_argument("--optlevel", default="O2", choices=["O0", "O1", "O2", "O3"])
    run_p.add_argument("--threads", type=int, default=16)
    run_p.add_argument("--throttle", action="store_true",
                       help="enable MAESTRO dynamic concurrency throttling")
    run_p.add_argument("--payload", action="store_true",
                       help="run the real algorithm payloads in leaf tasks")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--faults", default=None, metavar="SPEC", type=_fault_spec,
        help="inject sensor-path faults: a profile name (e.g. 'default', "
             "'flaky-msr', 'stall') and/or comma-separated field=value "
             "overrides (see repro.faults)",
    )
    run_p.set_defaults(func=_cmd_run)

    fs_p = sub.add_parser(
        "faultsweep",
        help="rerun the throttling comparison under each fault profile",
    )
    fs_p.add_argument("--apps", default=None,
                      help="comma-separated throttling apps (default: lulesh,dijkstra)")
    fs_p.add_argument("--profiles", default=None,
                      help="comma-separated fault profiles (default: all)")
    fs_p.add_argument("--seed", type=int, default=0)
    fs_p.add_argument("--quick", action="store_true",
                      help="one app, three profiles — the CI smoke configuration")
    _add_sweep_args(fs_p)
    fs_p.set_defaults(func=_cmd_faultsweep)

    ms_p = sub.add_parser(
        "metersweep",
        help="attribution error + observer overhead: backend x cadence x faults",
    )
    ms_p.add_argument("--app", default=None,
                      help="workload to meter (default: lulesh)")
    ms_p.add_argument("--backends", default=None,
                      help="comma-separated metering backends "
                           "(default: rapl,counter-model)")
    ms_p.add_argument("--periods", default=None, metavar="S,S",
                      help="comma-separated sampling periods in seconds "
                           "(default: 0.4,0.1,0.025)")
    ms_p.add_argument("--profiles", default=None,
                      help="comma-separated fault profiles "
                           "(default: none,flaky-msr,stall)")
    ms_p.add_argument("--read-cost", type=float, default=0.002, metavar="S",
                      help="observer cost per socket sample read, "
                           "solo-seconds (default: 0.002)")
    ms_p.add_argument("--seed", type=int, default=0)
    ms_p.add_argument("--quick", action="store_true",
                      help="both backends, two cadences, fault-free — the "
                           "CI smoke configuration")
    _add_sweep_args(ms_p)
    ms_p.set_defaults(func=_cmd_metersweep)

    sched_p = sub.add_parser(
        "sched", help="one scheduled cluster run (jobs onto budgeted nodes)"
    )
    from repro.sched.policy import POLICIES as _POLICIES
    from repro.sched.workload import TRACE_PROFILES as _PROFILES

    sched_p.add_argument("--profile", default="poisson",
                         choices=sorted(_PROFILES),
                         help="arrival trace profile (default: poisson)")
    sched_p.add_argument("--policy", default="fcfs", choices=sorted(_POLICIES),
                         help="placement policy (default: fcfs)")
    sched_p.add_argument("--nodes", type=int, default=4,
                         help="cluster nodes (default: 4)")
    sched_p.add_argument("--budget", type=float, default=400.0, metavar="W",
                         help="global power budget in watts (default: 400)")
    sched_p.add_argument("--jobs", type=int, default=16,
                         help="trace length in jobs (default: 16)")
    sched_p.add_argument("--rate", type=float, default=1.0, metavar="J/S",
                         help="mean arrival rate, jobs/s (default: 1.0)")
    sched_p.add_argument("--queue-depth", type=int, default=8,
                         help="admission-queue bound (default: 8)")
    sched_p.add_argument("--seed", type=int, default=0)
    sched_p.add_argument("--time-limit", type=float, default=600.0,
                         metavar="S",
                         help="simulated-time tripwire per segment; raise it "
                              "for long traces (default: 600)")
    from repro.sched.spec import EXECUTION_MODES as _EXECUTIONS
    sched_p.add_argument("--execution", default="full", choices=_EXECUTIONS,
                         help="job execution model: 'full' microsimulation or "
                              "the 'analytic' roofline closed form "
                              "(million-job scale)")
    sched_p.add_argument("--segment-jobs", type=int, default=0, metavar="N",
                         help="drain and checkpoint every N jobs "
                              "(0 = single segment)")
    sched_p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="persist segment checkpoints here and resume "
                              "from them (requires --segment-jobs)")
    sched_p.add_argument("--no-retain", action="store_true",
                         help="stream aggregation only: drop per-job records "
                              "(tails come from quantile sketches)")
    sched_p.add_argument("--events", default=None, metavar="FILE",
                         help="append structured telemetry events to FILE (JSONL)")
    sched_p.add_argument("--metrics", default=None, metavar="FILE",
                         help="dump a repro.obs metrics snapshot (JSON) to FILE")
    sched_p.add_argument("--trace", default=None, metavar="FILE",
                         help="write a Chrome-trace JSON of the campaign "
                              "(per-node job tracks, simulated time)")
    sched_p.add_argument("--quiet", action="store_true",
                         help="suppress the per-job narration")
    sched_p.set_defaults(func=_cmd_sched)

    ssw_p = sub.add_parser(
        "schedsweep", help="placement policy x power budget comparison table"
    )
    ssw_p.add_argument("--profiles", default=None,
                       help="comma-separated trace profiles (default: poisson,bursty)")
    ssw_p.add_argument("--policies", default=None,
                       help="comma-separated policies (default: the four "
                            "heuristics; the tournament adds 'predicted')")
    ssw_p.add_argument("--budgets", default=None, metavar="W,W",
                       help="comma-separated global budgets in watts "
                            "(default: 300,500)")
    ssw_p.add_argument("--nodes", type=int, default=4)
    ssw_p.add_argument("--jobs", type=int, default=12)
    ssw_p.add_argument("--seed", type=int, default=0)
    ssw_p.add_argument("--quick", action="store_true",
                       help="2 policies, 1 profile, 1 budget, no tournament "
                            "— the CI smoke configuration")
    ssw_p.add_argument("--no-tournament", action="store_true",
                       help="skip the all-policy tournament cell (diurnal "
                            "trace, ranked by mean EDP)")
    _add_sweep_args(ssw_p)
    ssw_p.set_defaults(func=_cmd_schedsweep)

    csw_p = sub.add_parser(
        "coschedsweep",
        help="contention profiling: apps x injectors x pressure levels",
    )
    csw_p.add_argument("--apps", default=None,
                       help="comma-separated apps to profile "
                            "(default: the scheduler's job mix)")
    csw_p.add_argument("--injectors", default=None,
                       help="comma-separated injector apps "
                            "(default: inject-membw,inject-coherence)")
    csw_p.add_argument("--levels", default=None, metavar="L,L",
                       help="comma-separated pressure levels (default: 0.5,1)")
    csw_p.add_argument("--threads", type=int, default=8,
                       help="threads per co-runner (default: 8)")
    csw_p.add_argument("--scale", type=float, default=0.15,
                       help="probed-app work scale (default: 0.15)")
    csw_p.add_argument("--inj-scale", type=float, default=12.0,
                       help="injector work scale — sized to outlast the "
                            "probed app (default: 12)")
    csw_p.add_argument("--seed", type=int, default=0)
    csw_p.add_argument("--quick", action="store_true",
                       help="2 apps, 1 injector, 1 level — the CI smoke "
                            "configuration")
    csw_p.add_argument("-o", "--output", default=None, metavar="FILE",
                       help="also persist the profile store as JSON")
    _add_sweep_args(csw_p)
    csw_p.set_defaults(func=_cmd_coschedsweep)

    t1_p = sub.add_parser("table1", help="Table I (GCC vs ICC)")
    _add_sweep_args(t1_p)
    t1_p.set_defaults(func=_cmd_table1)
    t2_p = sub.add_parser("table2", help="Table II (GCC -O levels)")
    _add_sweep_args(t2_p)
    t2_p.set_defaults(func=_cmd_table2)
    t3_p = sub.add_parser("table3", help="Table III (ICC -O levels)")
    _add_sweep_args(t3_p)
    t3_p.set_defaults(func=_cmd_table3)

    fig_p = sub.add_parser("figure", help="Figures 1-4 (scaling sweeps)")
    fig_p.add_argument("figure", choices=["fig1", "fig2", "fig3", "fig4"])
    _add_sweep_args(fig_p)
    fig_p.set_defaults(func=_cmd_figure)

    thr_p = sub.add_parser("throttle", help="Tables IV-VII (dynamic throttling)")
    thr_p.add_argument("app", nargs="?", default=None)
    _add_sweep_args(thr_p)
    thr_p.set_defaults(func=_cmd_throttle)

    sen_p = sub.add_parser(
        "sensitivity", help="policy sweep over the High-power threshold"
    )
    sen_p.add_argument("app", nargs="?", default="lulesh")
    _add_sweep_args(sen_p)
    sen_p.set_defaults(func=_cmd_sensitivity)

    cold_p = sub.add_parser("coldstart", help="footnote 2 (cold-system effect)")
    cold_p.add_argument("--quiet", action="store_true",
                        help="suppress the progress renderer")
    cold_p.set_defaults(func=_cmd_coldstart)

    rep_p = sub.add_parser("reproduce", help="full paper-vs-measured report")
    rep_p.add_argument("-o", "--output", default=None)
    rep_p.add_argument("--quick", action="store_true")
    _add_sweep_args(rep_p)
    rep_p.set_defaults(func=_cmd_reproduce)

    exp_p = sub.add_parser("export", help="export an artifact as CSV/JSON")
    exp_p.add_argument(
        "artifact",
        choices=["table1", "table2", "table3", "table4", "table5", "table6",
                 "table7", "fig1", "fig2", "fig3", "fig4"],
    )
    exp_p.add_argument("-o", "--output", default=None)
    _add_sweep_args(exp_p)
    exp_p.set_defaults(func=_cmd_export)

    val_p = sub.add_parser(
        "validate",
        help="sweep the scenario corpus under the physics-invariant sanitizer",
    )
    val_p.add_argument("--quick", action="store_true",
                       help="validate the quick corpus subset (smoke use)")
    val_p.add_argument("--differential", action="store_true",
                       help="also run the differential bit-identity replay")
    val_p.add_argument("--differential-only", action="store_true",
                       help="run only the differential replay, skip the corpus")
    val_p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (default: 1, serial)")
    val_p.add_argument("--events", default=None, metavar="FILE",
                       help="append structured telemetry events to FILE (JSONL)")
    val_p.add_argument("--quiet", action="store_true",
                       help="suppress the per-run progress renderer")
    val_p.set_defaults(func=_cmd_validate)

    cache_p = sub.add_parser(
        "cache", help="inspect, clear, migrate or compact the result cache"
    )
    cache_p.add_argument(
        "action", choices=["info", "clear", "migrate", "compact", "reindex"]
    )
    cache_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache root (default: ~/.cache/repro-harness "
                              "or $REPRO_CACHE_DIR)")
    cache_p.set_defaults(func=_cmd_cache)

    serve_p = sub.add_parser(
        "serve",
        help="run the always-on experiment service (NDJSON over TCP)",
    )
    from repro.service.server import add_serve_arguments

    add_serve_arguments(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    submit_p = sub.add_parser(
        "submit", help="submit one run spec to a running service")
    submit_p.add_argument("app", choices=sorted(APP_REGISTRY))
    submit_p.add_argument("--compiler", default="gcc",
                          choices=["gcc", "icc", "maestro"])
    submit_p.add_argument("--optlevel", default="O2",
                          choices=["O0", "O1", "O2", "O3"])
    submit_p.add_argument("--threads", type=int, default=16)
    submit_p.add_argument("--throttle", action="store_true")
    submit_p.add_argument("--payload", action="store_true")
    submit_p.add_argument("--scale", type=float, default=1.0)
    submit_p.add_argument("--seed", type=int, default=0)
    submit_p.add_argument("--faults", default=None, metavar="SPEC",
                          type=_fault_spec)
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=7823)
    submit_p.add_argument("--client", default="cli",
                          help="client id for quota accounting")
    submit_p.add_argument("--no-wait", action="store_true",
                          help="return after admission instead of blocking "
                               "for the result")
    submit_p.add_argument("--timeout", type=float, default=None,
                          dest="timeout", metavar="S",
                          help="max seconds to wait for the result")
    submit_p.set_defaults(func=_cmd_submit)

    obs_p = sub.add_parser(
        "obs",
        help="observability: report a live service's metrics and spans")
    obs_p.add_argument("action", choices=["report"],
                       help="'report' pretty-prints the service's metrics "
                            "frame (headline gauges, instruments, top spans)")
    obs_p.add_argument("--host", default="127.0.0.1")
    obs_p.add_argument("--port", type=int, default=7823)
    obs_p.add_argument("--prometheus", action="store_true",
                       help="print the raw Prometheus text exposition instead")
    obs_p.add_argument("--json", action="store_true",
                       help="print the metrics snapshot as JSON instead")
    obs_p.set_defaults(func=_cmd_obs)

    sub.add_parser("recalibrate", help="refresh empirical residuals").set_defaults(
        func=_cmd_recalibrate
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
