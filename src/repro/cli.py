"""``repro-paper`` command-line interface.

Subcommands map one-to-one to the paper's evaluation artifacts:

    repro-paper list                       # applications in the registry
    repro-paper run APP [options]          # one measured execution
    repro-paper table1                     # Table I
    repro-paper table2 / table3            # Tables II / III
    repro-paper figure fig1..fig4          # Figures 1-4
    repro-paper throttle [APP]             # Tables IV-VII
    repro-paper faultsweep                 # robustness: savings under faults
    repro-paper coldstart                  # footnote 2
    repro-paper reproduce [-o FILE]        # full EXPERIMENTS.md
    repro-paper recalibrate                # refresh residual corrections
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_REGISTRY, list_apps


def _cmd_list(args: argparse.Namespace) -> int:
    for name in list_apps():
        info = APP_REGISTRY[name]
        print(f"{name:24s} [{info.group:8s}] {info.description}")
    return 0


def _fault_spec(text: str):
    """argparse type for --faults: parse eagerly, fail as a usage error."""
    from repro.errors import FaultConfigError
    from repro.faults import parse_fault_spec

    try:
        return parse_fault_spec(text)
    except FaultConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_measurement

    faults = args.faults  # parsed by argparse (_fault_spec)
    result = run_measurement(
        args.app,
        compiler=args.compiler,
        optlevel=args.optlevel,
        threads=args.threads,
        throttle=args.throttle,
        payload=args.payload,
        seed=args.seed,
        faults=faults,
    )
    print(result.region)
    run = result.run
    print(
        f"tasks: {run.tasks_completed}  steals: {run.steals}  "
        f"spins: {run.spin_entries}  throttle on/off: "
        f"{run.throttle_activations}/{run.throttle_deactivations}"
    )
    if result.faults is not None:
        from repro.measure.energy import SampleQuality

        injected = ", ".join(
            f"{kind}={count}" for kind, count in result.faults.stats.items() if count
        )
        quality = result.daemon.quality_counts
        qtext = ", ".join(f"{q.name}={quality[q]}" for q in SampleQuality)
        print(f"faults injected: {injected or 'none'}")
        print(f"sample quality: {qtext}  "
              f"late/missed ticks: {result.daemon.late_ticks}/"
              f"{result.daemon.missed_ticks}")
    if args.payload:
        print(f"result: {run.result!r}")
    return 0


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from repro.errors import FaultConfigError, UnknownApplicationError
    from repro.experiments.faultsweep import (
        DEFAULT_APPS,
        DEFAULT_PROFILES,
        run_fault_sweep,
    )

    apps = tuple(args.apps.split(",")) if args.apps else DEFAULT_APPS
    profiles = tuple(args.profiles.split(",")) if args.profiles else DEFAULT_PROFILES
    if args.quick:
        apps = apps[:1]
        profiles = tuple(p for p in profiles if p in ("none", "stall", "default"))
    try:
        result = run_fault_sweep(apps, profiles, seed=args.seed)
    except (FaultConfigError, UnknownApplicationError) as exc:
        print(f"repro-paper faultsweep: error: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    print(run_table1().format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table23 import run_table2

    print(run_table2().format())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table23 import run_table3

    print(run_table3().format())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import run_figure

    print(run_figure(args.figure).format())
    return 0


def _cmd_throttle(args: argparse.Namespace) -> int:
    from repro.experiments.throttling import run_all_throttle_tables, run_throttle_table

    if args.app:
        print(run_throttle_table(args.app).format())
    else:
        for result in run_all_throttle_tables().values():
            print(result.format())
            print()
    return 0


def _cmd_coldstart(args: argparse.Namespace) -> int:
    from repro.experiments.coldstart import run_cold_start

    print(run_cold_start().format())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.compare import generate_experiments_report

    text = generate_experiments_report(output=args.output, quick=args.quick)
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import (
        export_figure_csv,
        export_optlevels_csv,
        export_table1_csv,
        export_throttle_json,
    )

    what = args.artifact
    out = args.output
    if what.startswith("fig"):
        from repro.experiments.figures import run_figure

        text = export_figure_csv(run_figure(what), out)
    elif what == "table1":
        from repro.experiments.table1 import run_table1

        text = export_table1_csv(run_table1(), out)
    elif what in ("table2", "table3"):
        from repro.experiments.table23 import run_opt_levels

        compiler = "gcc" if what == "table2" else "icc"
        text = export_optlevels_csv(run_opt_levels(compiler), out)
    else:
        from repro.experiments.throttling import run_throttle_table

        app = {
            "table4": "lulesh",
            "table5": "dijkstra",
            "table6": "bots-health",
            "table7": "bots-strassen",
        }[what]
        text = export_throttle_json(run_throttle_table(app), out)
    if out:
        print(f"wrote {out}")
    else:
        print(text)
    return 0


def _cmd_recalibrate(args: argparse.Namespace) -> int:
    from repro.experiments.recalibrate import compute_residuals, write_residuals_module

    corrections = compute_residuals(verbose=True)
    path = write_residuals_module(corrections)
    print(f"wrote {len(corrections)} corrections to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduction of 'Power Measurement and Concurrency Throttling "
            "for Energy Reduction in OpenMP Programs' on a simulated "
            "two-socket Sandybridge node."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark applications").set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one application with measurement")
    run_p.add_argument("app", choices=sorted(APP_REGISTRY))
    run_p.add_argument("--compiler", default="gcc", choices=["gcc", "icc", "maestro"])
    run_p.add_argument("--optlevel", default="O2", choices=["O0", "O1", "O2", "O3"])
    run_p.add_argument("--threads", type=int, default=16)
    run_p.add_argument("--throttle", action="store_true",
                       help="enable MAESTRO dynamic concurrency throttling")
    run_p.add_argument("--payload", action="store_true",
                       help="run the real algorithm payloads in leaf tasks")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--faults", default=None, metavar="SPEC", type=_fault_spec,
        help="inject sensor-path faults: a profile name (e.g. 'default', "
             "'flaky-msr', 'stall') and/or comma-separated field=value "
             "overrides (see repro.faults)",
    )
    run_p.set_defaults(func=_cmd_run)

    fs_p = sub.add_parser(
        "faultsweep",
        help="rerun the throttling comparison under each fault profile",
    )
    fs_p.add_argument("--apps", default=None,
                      help="comma-separated throttling apps (default: lulesh,dijkstra)")
    fs_p.add_argument("--profiles", default=None,
                      help="comma-separated fault profiles (default: all)")
    fs_p.add_argument("--seed", type=int, default=0)
    fs_p.add_argument("--quick", action="store_true",
                      help="one app, three profiles — the CI smoke configuration")
    fs_p.set_defaults(func=_cmd_faultsweep)

    sub.add_parser("table1", help="Table I (GCC vs ICC)").set_defaults(func=_cmd_table1)
    sub.add_parser("table2", help="Table II (GCC -O levels)").set_defaults(func=_cmd_table2)
    sub.add_parser("table3", help="Table III (ICC -O levels)").set_defaults(func=_cmd_table3)

    fig_p = sub.add_parser("figure", help="Figures 1-4 (scaling sweeps)")
    fig_p.add_argument("figure", choices=["fig1", "fig2", "fig3", "fig4"])
    fig_p.set_defaults(func=_cmd_figure)

    thr_p = sub.add_parser("throttle", help="Tables IV-VII (dynamic throttling)")
    thr_p.add_argument("app", nargs="?", default=None)
    thr_p.set_defaults(func=_cmd_throttle)

    sub.add_parser("coldstart", help="footnote 2 (cold-system effect)").set_defaults(
        func=_cmd_coldstart
    )

    rep_p = sub.add_parser("reproduce", help="full paper-vs-measured report")
    rep_p.add_argument("-o", "--output", default=None)
    rep_p.add_argument("--quick", action="store_true")
    rep_p.set_defaults(func=_cmd_reproduce)

    exp_p = sub.add_parser("export", help="export an artifact as CSV/JSON")
    exp_p.add_argument(
        "artifact",
        choices=["table1", "table2", "table3", "table4", "table5", "table6",
                 "table7", "fig1", "fig2", "fig3", "fig4"],
    )
    exp_p.add_argument("-o", "--output", default=None)
    exp_p.set_defaults(func=_cmd_export)

    sub.add_parser("recalibrate", help="refresh empirical residuals").set_defaults(
        func=_cmd_recalibrate
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
