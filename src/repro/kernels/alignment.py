"""Pairwise sequence alignment (the BOTS ``alignment`` reference).

BOTS aligns all pairs of protein sequences with a Myers-Miller style
linear-space algorithm; the parallel structure is simply "one task per
pair".  The reference here scores pairs with a standard Needleman-Wunsch
global alignment over numpy DP rows, which preserves both the structure
(all-pairs) and the per-pair cost shape (product of lengths).
"""

from __future__ import annotations

import numpy as np

#: Amino-acid alphabet used by the generator.
ALPHABET = "ARNDCQEGHILKMFPSTWYV"


def random_sequences(count: int, length: int, *, seed: int = 0) -> list[str]:
    """Deterministic random protein-like sequences."""
    if count <= 0 or length <= 0:
        raise ValueError("count and length must be positive")
    rng = np.random.default_rng(seed)
    letters = np.array(list(ALPHABET))
    return ["".join(letters[rng.integers(0, len(letters), length)]) for _ in range(count)]


def align_pair(
    a: str,
    b: str,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> float:
    """Needleman-Wunsch global alignment score of two sequences.

    Row-wise DP with numpy: O(len(a) * len(b)) time, O(len(b)) space —
    the same complexity class as BOTS's linear-space aligner.
    """
    if not a or not b:
        return gap * (len(a) + len(b))
    bv = np.frombuffer(b.encode("ascii"), dtype=np.uint8)
    prev = gap * np.arange(len(b) + 1, dtype=np.float64)
    for i, ca in enumerate(a.encode("ascii"), start=1):
        cur = np.empty_like(prev)
        cur[0] = gap * i
        sub = np.where(bv == ca, match, mismatch)
        diag = prev[:-1] + sub
        up = prev[1:] + gap
        # Left-dependency is sequential; resolve it with a scan.
        best = np.maximum(diag, up)
        running = cur[0]
        for j in range(len(b)):
            running = max(best[j], running + gap)
            cur[j + 1] = running
        prev = cur
    return float(prev[-1])


def pairwise_alignment_scores(sequences: list[str], **kwargs: float) -> np.ndarray:
    """Upper-triangle matrix of all-pairs alignment scores.

    The (i, j) entries with i < j are exactly the independent tasks the
    BOTS alignment benchmark spawns.
    """
    n = len(sequences)
    scores = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            scores[i, j] = align_pair(sequences[i], sequences[j], **kwargs)
    return scores
