"""BOTS ``health``: a multilevel health-system simulation.

The benchmark models a hierarchy of villages; each timestep, every
village processes its patient queues (new arrivals, assessment,
treatment, referral up the hierarchy).  Parallelism follows the village
tree: a task per sub-village per step.

The reference here keeps the same structure with simplified dynamics:
patients arrive at leaf villages with a fixed probability, are treated
locally with probability proportional to the village level, and are
otherwise referred to the parent.  Determinism comes from a per-village
counter-based arrival rule rather than shared RNG state, so the parallel
task version computes the identical result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class HealthVillage:
    """One node of the village hierarchy."""

    vid: int
    level: int
    children: list["HealthVillage"] = field(default_factory=list)
    #: Patients currently waiting at this village.
    waiting: int = 0
    #: Patients treated here over the whole simulation.
    treated: int = 0
    #: Patients referred to the parent over the whole simulation.
    referred: int = 0

    def subtree_size(self) -> int:
        """Number of villages in this subtree (including self)."""
        return 1 + sum(c.subtree_size() for c in self.children)


def make_village(levels: int, branching: int = 4, *, _vid: list[int] | None = None,
                 level: Optional[int] = None) -> HealthVillage:
    """Build a village tree of ``levels`` levels with ``branching`` fan-out."""
    if levels <= 0:
        raise ValueError(f"levels must be positive, got {levels!r}")
    counter = _vid if _vid is not None else [0]
    lvl = levels if level is None else level
    village = HealthVillage(vid=counter[0], level=lvl)
    counter[0] += 1
    if lvl > 1:
        village.children = [
            make_village(levels, branching, _vid=counter, level=lvl - 1)
            for _ in range(branching)
        ]
    return village


def simulate_step(village: HealthVillage, step: int, *, is_root: bool = True) -> int:
    """Advance one timestep bottom-up; returns patients referred upward.

    Children are processed first (their referrals arrive this step), then
    this village treats what it can.  Arrival rule: a leaf receives a
    patient when ``(step + vid) % 3 == 0`` — deterministic and
    village-local, so any parallel schedule over disjoint subtrees gives
    identical results.
    """
    incoming = 0
    for child in village.children:
        incoming += simulate_step(child, step, is_root=False)
    village.waiting += incoming
    if not village.children and (step + village.vid) % 3 == 0:
        village.waiting += 1
    # Treatment capacity grows with the level of the facility; leaf
    # villages (level 1) have none and refer every patient upward.
    capacity = village.level - 1
    treated_now = min(village.waiting, capacity)
    village.treated += treated_now
    village.waiting -= treated_now
    # Untreated patients are referred up; the root hospital keeps its queue.
    if not is_root:
        referred_now = village.waiting
        village.referred += referred_now
        village.waiting = 0
        return referred_now
    return 0


def simulate(village: HealthVillage, steps: int) -> tuple[int, int]:
    """Run ``steps`` timesteps from the root; returns (treated, referred)."""
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps!r}")
    for step in range(steps):
        simulate_step(village, step)
    return totals(village)


def totals(village: HealthVillage) -> tuple[int, int]:
    """(treated, referred) summed over the subtree."""
    treated = village.treated
    referred = village.referred
    for child in village.children:
        t, r = totals(child)
        treated += t
        referred += r
    return treated, referred
