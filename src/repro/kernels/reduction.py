"""Array reduction: the simplest OpenMP pattern in the suite.

The micro-benchmark repeatedly reduces a large array with an OpenMP
``reduction(+:sum)`` loop.  The reference is a chunked sum with explicit
partials, mirroring how the parallel version decomposes.
"""

from __future__ import annotations

import numpy as np


def array_reduction(values: np.ndarray, *, chunks: int = 1) -> float:
    """Sum ``values`` via ``chunks`` partial sums (chunks=1: plain sum).

    Splitting into partials is how the OpenMP reduction actually
    computes; exposing it lets tests verify the task-parallel version
    combines identically (up to float association differences, which is
    why tests compare with a tolerance, as OpenMP users must).
    """
    values = np.asarray(values, dtype=np.float64)
    if chunks <= 0:
        raise ValueError(f"chunks must be positive, got {chunks!r}")
    if chunks == 1 or values.size == 0:
        return float(values.sum())
    bounds = np.linspace(0, values.size, chunks + 1, dtype=int)
    partials = [float(values[lo:hi].sum()) for lo, hi in zip(bounds[:-1], bounds[1:])]
    return float(sum(partials))
