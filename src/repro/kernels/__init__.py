"""Reference sequential implementations of the benchmark algorithms.

Every application in the evaluation corresponds to a genuine algorithm.
The simulator runs *task graphs* whose shapes come from these algorithms;
the kernels here are the real computations, used to:

* validate the task-graph structure (a task-parallel mergesort must sort;
  a task-parallel n-queens must count the right number of solutions);
* give the example programs real payloads;
* provide ground truth for the property-based test suite.

They are deliberately straightforward (the paper's micro-benchmarks "are
not tuned and represent default implementations of generic algorithms"),
but correct, and vectorised with numpy where the algorithm allows.
"""

from repro.kernels.alignment import align_pair, pairwise_alignment_scores
from repro.kernels.fib import fib, fib_task_counts
from repro.kernels.graphs import dijkstra_sssp, random_graph
from repro.kernels.health import HealthVillage, make_village, simulate_step
from repro.kernels.hydro import HydroState, hydro_advance, make_sedov_state, total_energy
from repro.kernels.linalg import sparse_lu, strassen_matmul
from repro.kernels.nqueens import count_nqueens
from repro.kernels.reduction import array_reduction
from repro.kernels.sorting import merge_sorted, mergesort, is_sorted

__all__ = [
    "HealthVillage",
    "HydroState",
    "align_pair",
    "array_reduction",
    "count_nqueens",
    "dijkstra_sssp",
    "fib",
    "fib_task_counts",
    "hydro_advance",
    "is_sorted",
    "make_sedov_state",
    "make_village",
    "merge_sorted",
    "mergesort",
    "pairwise_alignment_scores",
    "random_graph",
    "simulate_step",
    "sparse_lu",
    "strassen_matmul",
    "total_energy",
]
