"""Dijkstra single-source shortest paths and graph generation.

The micro-benchmark's algorithm: a binary-heap Dijkstra over an adjacency
structure.  ``random_graph`` produces the connected sparse graphs the
examples and tests run it on (deterministic per seed).
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

import numpy as np

#: Adjacency list type: node -> list of (neighbor, weight).
Adjacency = list[list[tuple[int, float]]]


def random_graph(
    n: int,
    avg_degree: float = 4.0,
    *,
    seed: int = 0,
    max_weight: float = 10.0,
) -> Adjacency:
    """Connected undirected random graph with weighted edges.

    A random spanning path guarantees connectivity; the remaining edges
    are sampled uniformly.  Weights are uniform in (0, max_weight].
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n!r}")
    rng = np.random.default_rng(seed)
    adj: Adjacency = [[] for _ in range(n)]

    def add_edge(u: int, v: int, w: float) -> None:
        adj[u].append((v, w))
        adj[v].append((u, w))

    order = rng.permutation(n)
    for i in range(1, n):
        add_edge(int(order[i - 1]), int(order[i]), float(rng.uniform(0.1, max_weight)))
    extra = max(0, int(n * avg_degree / 2) - (n - 1))
    for _ in range(extra):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            add_edge(u, v, float(rng.uniform(0.1, max_weight)))
    return adj


def dijkstra_sssp(adj: Adjacency, source: int = 0) -> np.ndarray:
    """Shortest-path distances from ``source`` (inf for unreachable)."""
    n = len(adj)
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range for {n} nodes")
    dist = np.full(n, math.inf)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
