"""Fibonacci: the canonical task-parallel stress test.

The paper runs it in two forms: the untuned micro-benchmark (full binary
recursion, one task per call — millions of two-line tasks) and BOTS
``fib`` with a cutoff that stops spawning below a depth so tasks are
coarse enough to amortise scheduling (Section II).

``fib_task_counts`` gives the exact subtree sizes, which the simulated
task graphs use to distribute calibrated work in proportion to the real
computation each subtree represents.
"""

from __future__ import annotations

from functools import lru_cache


def fib(n: int) -> int:
    """The n-th Fibonacci number (fib(0)=0, fib(1)=1), iteratively."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n!r}")
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


@lru_cache(maxsize=None)
def fib_call_count(n: int) -> int:
    """Number of calls the naive recursion makes for fib(n).

    ``calls(n) = calls(n-1) + calls(n-2) + 1``; equals ``2*fib(n+1) - 1``.
    This is the task count of the uncut task-parallel version and the
    work weight of a subtree rooted at ``n``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n!r}")
    if n < 2:
        return 1
    return fib_call_count(n - 1) + fib_call_count(n - 2) + 1


def fib_task_counts(n: int, cutoff_depth: int) -> tuple[int, int]:
    """(spawned task count, leaf count) for recursion with a depth cutoff.

    Spawning stops at ``cutoff_depth``; below it the computation runs
    inline.  ``cutoff_depth=0`` means fully serial (1 task, 1 leaf).
    """
    if n < 0 or cutoff_depth < 0:
        raise ValueError("n and cutoff_depth must be non-negative")

    def walk(m: int, depth: int) -> tuple[int, int]:
        if m < 2 or depth >= cutoff_depth:
            return 1, 1
        t1, l1 = walk(m - 1, depth + 1)
        t2, l2 = walk(m - 2, depth + 1)
        return t1 + t2 + 1, l1 + l2

    return walk(n, 0)
