"""N-queens solution counting by backtracking.

Used by both the micro-benchmark (fine-grained: a task per placement)
and BOTS ``nqueens`` (with a spawn cutoff).  The bitmask formulation is
the standard efficient backtracking: columns and both diagonals tracked
as bit sets.
"""

from __future__ import annotations

#: Known solution counts for validation (n: solutions).
KNOWN_SOLUTIONS = {
    1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92,
    9: 352, 10: 724, 11: 2680, 12: 14200,
}


def count_nqueens(n: int) -> int:
    """Number of ways to place n non-attacking queens on an n x n board."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n!r}")
    full = (1 << n) - 1

    def solve(cols: int, diag1: int, diag2: int) -> int:
        if cols == full:
            return 1
        count = 0
        free = full & ~(cols | diag1 | diag2)
        while free:
            bit = free & -free
            free ^= bit
            count += solve(cols | bit, (diag1 | bit) << 1 & full, (diag2 | bit) >> 1)
        return count

    return solve(0, 0, 0)


def count_nqueens_from_prefix(n: int, prefix: tuple[int, ...]) -> int:
    """Solutions with the first ``len(prefix)`` rows fixed to those columns.

    This is the unit of work a task-parallel n-queens distributes: each
    first/second-row placement becomes a task counting its subtree.
    Returns 0 for prefixes that already conflict.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n!r}")
    full = (1 << n) - 1
    cols = diag1 = diag2 = 0
    for col in prefix:
        if not (0 <= col < n):
            raise ValueError(f"column {col} out of range for n={n}")
        bit = 1 << col
        if (cols | diag1 | diag2) & bit:
            return 0
        cols |= bit
        diag1 = (diag1 | bit) << 1 & full
        diag2 = (diag2 | bit) >> 1

    def solve(cols: int, diag1: int, diag2: int) -> int:
        if cols == full:
            return 1
        count = 0
        free = full & ~(cols | diag1 | diag2)
        while free:
            bit = free & -free
            free ^= bit
            count += solve(cols | bit, (diag1 | bit) << 1 & full, (diag2 | bit) >> 1)
        return count

    return solve(cols, diag1, diag2)
