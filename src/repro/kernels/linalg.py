"""Strassen matrix multiplication and blocked sparse LU decomposition.

The BOTS references:

* ``strassen_matmul`` — Strassen's seven-multiplication recursion with a
  cutoff to the classical algorithm.  The recursion's structure (seven
  child multiplies per node, submatrix additions around them) is exactly
  the task graph the simulated application generates, including its
  compute-bound (leaf multiply) and memory-bound (addition) phases;
* ``sparse_lu`` — the BOTS sparselu pattern: a block matrix where some
  blocks are absent; per step k, factor the diagonal block, solve the
  row/column panels, then update the trailing submatrix (the bmod bulk).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _split(m: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    h = m.shape[0] // 2
    return m[:h, :h], m[:h, h:], m[h:, :h], m[h:, h:]


def strassen_matmul(a: np.ndarray, b: np.ndarray, *, cutoff: int = 64) -> np.ndarray:
    """Multiply square power-of-two matrices with Strassen's recursion."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError(f"expected square matrices of equal size, got {a.shape} x {b.shape}")
    if n & (n - 1):
        raise ValueError(f"size must be a power of two, got {n}")
    if n <= cutoff:
        return a @ b
    a11, a12, a21, a22 = _split(a)
    b11, b12, b21, b22 = _split(b)
    # The seven products (each a child task in the parallel version).
    m1 = strassen_matmul(a11 + a22, b11 + b22, cutoff=cutoff)
    m2 = strassen_matmul(a21 + a22, b11, cutoff=cutoff)
    m3 = strassen_matmul(a11, b12 - b22, cutoff=cutoff)
    m4 = strassen_matmul(a22, b21 - b11, cutoff=cutoff)
    m5 = strassen_matmul(a11 + a12, b22, cutoff=cutoff)
    m6 = strassen_matmul(a21 - a11, b11 + b12, cutoff=cutoff)
    m7 = strassen_matmul(a12 - a22, b21 + b22, cutoff=cutoff)
    out = np.empty_like(a)
    h = n // 2
    out[:h, :h] = m1 + m4 - m5 + m7
    out[:h, h:] = m3 + m5
    out[h:, :h] = m2 + m4
    out[h:, h:] = m1 - m2 + m3 + m6
    return out


def strassen_task_counts(n: int, cutoff: int) -> tuple[int, int]:
    """(multiply leaves, internal nodes) of the Strassen recursion tree."""
    if n <= cutoff:
        return 1, 0
    leaves, internal = strassen_task_counts(n // 2, cutoff)
    return 7 * leaves, 7 * internal + 1


def sparse_lu(
    blocks: list[list[Optional[np.ndarray]]],
) -> list[list[Optional[np.ndarray]]]:
    """In-place blocked LU of a block-sparse matrix (BOTS sparselu).

    ``blocks[i][j]`` is a dense block or None (structural zero).  Returns
    the block grid holding L (strict lower, unit diagonal implied) and U.
    Fill-in allocates new blocks, exactly as BOTS does.  No pivoting —
    the generator guarantees diagonally dominant diagonal blocks.
    """
    nb = len(blocks)
    for row in blocks:
        if len(row) != nb:
            raise ValueError("block grid must be square")
    for k in range(nb):
        akk = blocks[k][k]
        if akk is None:
            raise ValueError(f"diagonal block ({k},{k}) is structurally zero")
        # lu0: factor the diagonal block in place (Doolittle).
        bs = akk.shape[0]
        for i in range(1, bs):
            for j in range(i):
                akk[i, j] /= akk[j, j]
                akk[i, j + 1:] -= akk[i, j] * akk[j, j + 1:]
        # fwd: row panel  (U blocks right of the diagonal)
        lower = np.tril(akk, -1) + np.eye(bs)
        upper = np.triu(akk)
        for j in range(k + 1, nb):
            if blocks[k][j] is not None:
                blocks[k][j] = np.linalg.solve(lower, blocks[k][j])
        # bdiv: column panel (L blocks below the diagonal)
        for i in range(k + 1, nb):
            if blocks[i][k] is not None:
                blocks[i][k] = np.linalg.solve(upper.T, blocks[i][k].T).T
        # bmod: trailing update (the parallel bulk)
        for i in range(k + 1, nb):
            if blocks[i][k] is None:
                continue
            for j in range(k + 1, nb):
                if blocks[k][j] is None:
                    continue
                if blocks[i][j] is None:
                    blocks[i][j] = np.zeros_like(akk)
                blocks[i][j] -= blocks[i][k] @ blocks[k][j]
    return blocks


def make_sparse_blocks(
    nb: int,
    block_size: int,
    *,
    density: float = 0.75,
    seed: int = 0,
) -> list[list[Optional[np.ndarray]]]:
    """Random block-sparse SPD-ish matrix for sparse_lu (deterministic)."""
    if not (0.0 < density <= 1.0):
        raise ValueError(f"density must be in (0,1], got {density!r}")
    rng = np.random.default_rng(seed)
    grid: list[list[Optional[np.ndarray]]] = []
    for i in range(nb):
        row: list[Optional[np.ndarray]] = []
        for j in range(nb):
            if i == j or rng.random() < density:
                block = rng.standard_normal((block_size, block_size))
                if i == j:
                    # Diagonal dominance keeps the pivot-free LU stable.
                    block += np.eye(block_size) * (block_size * 4.0)
                row.append(block)
            else:
                row.append(None)
        grid.append(row)
    return grid


def blocks_to_dense(blocks: list[list[Optional[np.ndarray]]]) -> np.ndarray:
    """Assemble a block grid into a dense matrix (zeros for None)."""
    nb = len(blocks)
    bs = next(b.shape[0] for row in blocks for b in row if b is not None)
    out = np.zeros((nb * bs, nb * bs))
    for i in range(nb):
        for j in range(nb):
            if blocks[i][j] is not None:
                out[i * bs:(i + 1) * bs, j * bs:(j + 1) * bs] = blocks[i][j]
    return out
