"""Merge sort: the micro-benchmark and the BOTS ``sort`` reference.

``mergesort`` is the untuned top-down recursion of the micro-benchmark;
``merge_sorted`` is the two-way merge both it and the task-parallel
version share.  Everything operates on 1-D numpy arrays and returns new
arrays (the task-parallel structure sorts halves independently, so
out-of-place is the honest reference).
"""

from __future__ import annotations

import numpy as np


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays into one sorted array.

    Linear-time two-pointer merge, vectorised via searchsorted: positions
    of ``b``'s elements within the merged output are ``index_in_b +
    count_of_a_less_than_it``, computable in bulk.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    # For each b[j], how many elements of a precede it (stable: a first).
    pos_b = np.searchsorted(a, b, side="right") + np.arange(b.size)
    mask = np.ones(out.size, dtype=bool)
    mask[pos_b] = False
    out[pos_b] = b
    out[mask] = a
    return out


def mergesort(values: np.ndarray, *, cutoff: int = 32) -> np.ndarray:
    """Top-down merge sort; below ``cutoff`` defers to insertion-style sort.

    The cutoff mirrors real implementations (and BOTS's sequential-sort
    threshold); correctness does not depend on it.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"expected 1-D array, got shape {values.shape}")
    if values.size <= 1:
        return values.copy()
    if values.size <= cutoff:
        return np.sort(values, kind="stable")
    mid = values.size // 2
    left = mergesort(values[:mid], cutoff=cutoff)
    right = mergesort(values[mid:], cutoff=cutoff)
    return merge_sorted(left, right)


def is_sorted(values: np.ndarray) -> bool:
    """True if ``values`` is non-decreasing."""
    values = np.asarray(values)
    if values.size <= 1:
        return True
    return bool(np.all(values[:-1] <= values[1:]))
