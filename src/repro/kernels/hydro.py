"""A Lagrangian shock-hydrodynamics kernel (the LULESH reference).

LULESH solves the Sedov blast-wave problem with a Lagrangian method: a
mesh whose nodes move with the material, advanced by a leapfrog of
(1) force/stress computation, (2) node position/velocity update, and
(3) an equation-of-state/constraint evaluation that also yields the next
stable timestep.  Those three phases — with their distinct memory
characters — are exactly the per-iteration parallel loops of the
simulated application.

The reference here is a 1-D spherical-symmetry Lagrangian scheme (the
Sedov problem is spherically symmetric, so 1-D radial captures the
physics) with an ideal-gas EOS and artificial viscosity.  It is small,
real, conservative, and testable: total energy is conserved to
integration tolerance and the shock propagates outward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class HydroState:
    """Lagrangian 1-D radial mesh state (SI-free normalised units).

    ``r`` holds the n+1 node radii; density/energy/pressure live on the
    n zones between them.
    """

    r: np.ndarray          # node positions, shape (n+1,)
    v: np.ndarray          # node velocities, shape (n+1,)
    rho: np.ndarray        # zone densities, shape (n,)
    e: np.ndarray          # zone specific internal energies, shape (n,)
    m: np.ndarray          # zone masses (constant), shape (n,)
    gamma: float = 1.4
    time: float = 0.0

    @property
    def zones(self) -> int:
        return self.rho.size

    def pressure(self) -> np.ndarray:
        """Ideal-gas EOS: p = (gamma - 1) rho e."""
        return (self.gamma - 1.0) * self.rho * self.e


def make_sedov_state(zones: int = 64, *, e0: float = 1.0, gamma: float = 1.4) -> HydroState:
    """Initial Sedov setup: cold uniform gas, energy deposited at centre."""
    if zones <= 2:
        raise ValueError(f"need at least 3 zones, got {zones!r}")
    r = np.linspace(0.0, 1.0, zones + 1)
    v = np.zeros(zones + 1)
    vol = _zone_volumes(r)
    rho = np.ones(zones)
    m = rho * vol
    e = np.full(zones, 1e-6)
    # Deposit the blast energy in the innermost zone.
    e[0] = e0 / m[0]
    return HydroState(r=r, v=v, rho=rho, e=e, m=m, gamma=gamma)


def _zone_volumes(r: np.ndarray) -> np.ndarray:
    """Spherical shell volumes between consecutive radii."""
    return (4.0 / 3.0) * np.pi * (r[1:] ** 3 - r[:-1] ** 3)


def hydro_advance(state: HydroState, dt: float, *, q_coeff: float = 2.0) -> HydroState:
    """Advance one explicit Lagrangian step in place; returns the state.

    Phase 1 (stress/force): zone pressures + artificial viscosity q give
    nodal forces.  Phase 2 (motion): velocities and positions update.
    Phase 3 (EOS/quality): densities from the moved mesh, internal energy
    from pdV work — the phase whose reduction also picks the next dt in
    the application.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt!r}")
    n = state.zones
    # --- phase 1: forces ------------------------------------------------
    p = state.pressure()
    # artificial viscosity on compressing zones
    dv = state.v[1:] - state.v[:-1]
    compressing = dv < 0
    q = np.where(compressing, q_coeff * state.rho * dv * dv, 0.0)
    ptot = p + q
    areas = 4.0 * np.pi * state.r ** 2
    force = np.zeros(n + 1)
    # Interior nodes feel the pressure difference of adjacent zones.
    force[1:-1] = (ptot[:-1] - ptot[1:]) * areas[1:-1]
    # Outer boundary: ambient (free) — zone pressure pushes outward.
    force[-1] = ptot[-1] * areas[-1]
    # Nodal masses: half of each adjacent zone.
    nodal_m = np.zeros(n + 1)
    nodal_m[:-1] += 0.5 * state.m
    nodal_m[1:] += 0.5 * state.m
    # --- phase 2: motion --------------------------------------------------
    old_vol = _zone_volumes(state.r)
    state.v += dt * force / nodal_m
    state.v[0] = 0.0  # symmetry at the origin
    state.r += dt * state.v
    # Lagrangian meshes must stay untangled for the scheme to be valid.
    if np.any(np.diff(state.r) <= 0.0):
        raise FloatingPointError("mesh tangled: timestep too large")
    # --- phase 3: EOS / energy -------------------------------------------
    new_vol = _zone_volumes(state.r)
    state.rho = state.m / new_vol
    # pdV work with the total (pressure + viscosity) stress.
    state.e -= ptot * (new_vol - old_vol) / state.m
    np.clip(state.e, 1e-12, None, out=state.e)
    state.time += dt
    return state


def stable_dt(state: HydroState, *, cfl: float = 0.25) -> float:
    """CFL-limited timestep from zone sound speeds (the dt reduction)."""
    cs = np.sqrt(state.gamma * np.maximum(state.pressure(), 1e-12) / state.rho)
    widths = np.diff(state.r)
    return float(cfl * np.min(widths / (cs + np.abs(state.v[1:]) + 1e-12)))


def total_energy(state: HydroState) -> float:
    """Internal + kinetic energy of the whole mesh (conserved quantity)."""
    internal = float(np.sum(state.m * state.e))
    nodal_m = np.zeros(state.zones + 1)
    nodal_m[:-1] += 0.5 * state.m
    nodal_m[1:] += 0.5 * state.m
    kinetic = float(np.sum(0.5 * nodal_m * state.v ** 2))
    return internal + kinetic


def shock_radius(state: HydroState) -> float:
    """Radius of the density peak — the expanding Sedov shock front."""
    idx = int(np.argmax(state.rho))
    return float(0.5 * (state.r[idx] + state.r[idx + 1]))
