"""Running Average Power Limit (RAPL) energy accounting.

Each socket owns a :class:`RaplDomain` that integrates the socket's
simulated power draw into an energy accumulator.  Two views exist:

* :attr:`RaplDomain.energy_j` — exact accumulated Joules, the simulator's
  ground truth, used by tests to validate measurement code;
* :meth:`RaplDomain.read_status` — what software sees: the accumulated
  energy quantised into 15.3 microJoule ticks and truncated to 32 bits,
  exactly the ``MSR_PKG_ENERGY_STATUS`` semantics the paper describes
  (Section II-A).  The counter wraps in a few minutes at full load, so
  clients must poll often enough and track wraps; that client logic lives
  in :mod:`repro.measure.energy`.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.units import (
    RAPL_COUNTER_MODULUS,
    RAPL_ENERGY_UNIT_J,
    joules_to_rapl_ticks,
    wrap_rapl_counter,
)


def expected_status(energy_j: float) -> int:
    """Register value implied by an exact energy, via the units helpers.

    A deliberate second derivation of :meth:`RaplDomain.read_status` (that
    method inlines the arithmetic; this one goes through
    :mod:`repro.units`) so the invariant checker can cross-check the two
    paths against each other.
    """
    return wrap_rapl_counter(joules_to_rapl_ticks(energy_j))


class RaplDomain:
    """Per-socket energy accumulator with an MSR-visible wrapped counter."""

    __slots__ = ("socket", "_energy_j")

    def __init__(self, socket: int) -> None:
        self.socket = socket
        self._energy_j = 0.0

    @property
    def energy_j(self) -> float:
        """Ground-truth accumulated energy in Joules (never wraps)."""
        return self._energy_j

    def add_energy(self, joules: float) -> None:
        """Accumulate ``joules`` of consumed energy.

        Called by the node's synchronisation step with ``power * dt``.
        Negative energy would mean the clock ran backwards (guarded at the
        clock level) or a corrupted power term; the inverted comparison
        also rejects NaN, which would silently poison the accumulator.
        """
        if not joules >= 0.0:
            raise SimulationError(
                f"energy increment must be finite and >= 0, got {joules!r}"
            )
        self._energy_j += joules

    def read_status(self) -> int:
        """Raw 32-bit MSR_PKG_ENERGY_STATUS value (15.3 uJ ticks, wrapped)."""
        ticks = int(self._energy_j / RAPL_ENERGY_UNIT_J)
        return ticks % RAPL_COUNTER_MODULUS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RaplDomain(socket={self.socket}, energy_j={self._energy_j:.3f})"
