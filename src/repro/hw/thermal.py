"""First-order RC thermal model, one instance per socket.

The die temperature relaxes exponentially toward the equilibrium implied by
the current power draw::

    T_eq = T_amb + P * R
    T(t + dt) = T_eq + (T(t) - T_eq) * exp(-dt / (R * C))

Between simulator synchronisation points the power is piecewise constant,
so this closed-form step is *exact* — no integration error accumulates no
matter how long the interval.

The model exists to reproduce the paper's cold-system effect (footnote 2:
on an initially cold system the first run always used less energy and drew
less power, e.g. NAS BT.C: 3.2% less energy) and to feed the
``IA32_THERM_STATUS`` digital readout that the RCRdaemon reports.
"""

from __future__ import annotations

import math

from repro.config import ThermalConfig


def rc_step(config: ThermalConfig, temp_degc: float, power_w: float, dt: float) -> float:
    """Pure closed-form RC step: the exact arithmetic of :meth:`ThermalState.advance`.

    Factored out so the invariant checker (:mod:`repro.validate`) can
    replay a socket's thermal trajectory with bit-identical floating-point
    operations and compare against the live model.  ``dt`` must be > 0.
    """
    t_eq = config.ambient_degc + power_w * config.r_degc_per_w
    return t_eq + (temp_degc - t_eq) * math.exp(-dt / config.time_constant_s)


class ThermalState:
    """Mutable per-socket die temperature."""

    __slots__ = ("config", "_temp_degc")

    def __init__(self, config: ThermalConfig, *, initial_degc: float | None = None) -> None:
        config.validate()
        self.config = config
        self._temp_degc = config.ambient_degc if initial_degc is None else float(initial_degc)

    @property
    def temp_degc(self) -> float:
        """Current die temperature in degrees Celsius."""
        return self._temp_degc

    def equilibrium_degc(self, power_w: float) -> float:
        """Steady-state temperature at constant power ``power_w``."""
        return self.config.ambient_degc + power_w * self.config.r_degc_per_w

    def advance(self, power_w: float, dt: float) -> float:
        """Advance the model ``dt`` seconds at constant power; returns new T."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt!r}")
        if dt == 0.0:
            return self._temp_degc
        self._temp_degc = rc_step(self.config, self._temp_degc, power_w, dt)
        return self._temp_degc

    def warm_to_steady_state(self, power_w: float) -> None:
        """Jump directly to equilibrium — models the paper's 'warm system'
        precondition ("All numbers reported here are from experiments run
        on a warm system", Section II-C)."""
        self._temp_degc = self.equilibrium_degc(power_w)

    def therm_status_raw(self) -> int:
        """IA32_THERM_STATUS-style digital readout.

        Real hardware reports the temperature as an offset below TjMax in
        bits 22:16; we produce the same encoding so the RCR daemon decodes
        it exactly as real tooling would.
        """
        offset = max(0, round(self.config.tjmax_degc - self._temp_degc))
        return (min(offset, 0x7F) & 0x7F) << 16

    @staticmethod
    def decode_therm_status(raw: int, tjmax_degc: float) -> float:
        """Decode a THERM_STATUS readout back to degrees Celsius."""
        offset = (raw >> 16) & 0x7F
        return tjmax_degc - offset
