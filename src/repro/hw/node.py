"""The simulated node: cores + memory + power + thermal + RAPL + MSRs.

Execution model
---------------
The node uses a *fluid* model layered on the discrete-event engine.  Each
``BUSY`` core drains its current :class:`~repro.hw.core.Segment` (measured
in solo-seconds) at a rate determined by its duty cycle and the current
memory contention on its socket.  Rates are piecewise constant: they only
change when machine state changes (a segment is assigned or completes, a
core changes state, a duty cycle commits).  Every mutation therefore runs:

1. ``_sync()``   — integrate energy/thermal/counters over the interval
   since the last sync and drain in-flight segments at the cached rates;
2. the mutation itself;
3. ``_recompute()`` — recompute contention, per-core rates and socket
   power, and reschedule the next segment-completion event.

Because power is constant between syncs, energy integration is exact; the
thermal step uses the closed-form RC solution, also exact per interval.

The node knows nothing about tasks, threads or OpenMP — that is the
runtime's job (:mod:`repro.qthreads`).  Its public surface is "assign this
segment to that core and call me back", plus state/duty control and the
MSR-visible counters.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.config import MachineConfig, PAPER_MACHINE
from repro.errors import SimulationError
from repro.hw.core import Core, CoreState, Segment
from repro.hw.memory import MemoryModel, SocketMemoryState
from repro.hw.msr import (
    IA32_APERF,
    IA32_CLOCK_MODULATION,
    IA32_MPERF,
    IA32_THERM_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    MSRFile,
    RAPL_POWER_UNIT_RAW,
    decode_clock_modulation,
)
from repro.hw.perfctr import CounterSnapshot, SocketCounters, snapshot, window_average
from repro.hw.power import PowerModel
from repro.hw.rapl import RaplDomain
from repro.hw.thermal import ThermalState
from repro.hw.topology import Topology
from repro.sim.engine import Engine
from repro.sim.events import Priority

#: Segments whose remaining wall time is below this are treated as
#: complete, batching near-simultaneous completions into one event.
_COMPLETION_EPS_S = 1e-12


class Node:
    """A two-socket Sandybridge-style node under fluid simulation."""

    def __init__(
        self,
        engine: Engine,
        config: MachineConfig = PAPER_MACHINE,
        *,
        warm: bool = True,
        track_tag_energy: bool = False,
    ) -> None:
        self.engine = engine
        self.config = config
        self.topology = Topology(config.sockets, config.cores_per_socket)
        self.cores: list[Core] = [
            Core(index=i, socket=self.topology.socket_of(i))
            for i in range(self.topology.total_cores)
        ]
        self.memory_model = MemoryModel(config.memory)
        self.power_model = PowerModel(config.power)
        self.rapl: list[RaplDomain] = [RaplDomain(s) for s in range(config.sockets)]
        self.thermal: list[ThermalState] = [
            ThermalState(config.thermal) for _ in range(config.sockets)
        ]
        self.counters: list[SocketCounters] = [
            SocketCounters() for _ in range(config.sockets)
        ]
        self.msr = MSRFile()
        self._mem_state: list[SocketMemoryState] = [
            SocketMemoryState() for _ in range(config.sockets)
        ]
        self._socket_power: list[float] = [0.0] * config.sockets
        self._pkg_power_limit_raw: list[int] = [0] * config.sockets
        self._last_sync = engine.now
        self._completion = None
        #: Cores grouped by socket, in core-index order — the same order
        #: the recompute/power sums have always iterated in.
        self._socket_cores: list[list[Core]] = [
            [self.cores[i] for i in self.topology.cores_in_socket(s)]
            for s in range(config.sockets)
        ]
        # --- recompute memo ------------------------------------------------
        # A socket's demand/stretch/per-core rates only change when one of
        # its cores changes state, segment or duty — plus, for cores that
        # carry a coherence penalty, when the *node-wide* busy count moves.
        # Mutators mark the affected sockets dirty; _recompute() only
        # re-derives dirty sockets and re-prices power where either the
        # rates or the (continuously drifting) temperature changed.  All
        # recomputed values use the exact arithmetic of the full pass, so
        # memoized runs are bit-identical to recomputing everything.
        self._rate_dirty: list[bool] = [True] * config.sockets
        self._busy_in_socket: list[int] = [0] * config.sockets
        self._coh_in_socket: list[int] = [0] * config.sockets
        self._power_temp: list[Optional[float]] = [None] * config.sockets
        self._recompute_now: Optional[float] = None
        #: Optional attribution of active-core energy to segment tags
        #: (profiling aid; off by default to keep the sync loop lean).
        self.track_tag_energy = track_tag_energy
        self.tag_energy_j: dict[str, float] = {}
        #: Optional read-only observer called as ``probe(dt)`` at the end
        #: of every :meth:`_sync` that advanced time.  Used by the
        #: invariant checker to mirror the integrators with bit-identical
        #: arithmetic; a single ``is not None`` test when unset.
        self._sync_probe: Optional[Callable[[float], None]] = None

        if warm:
            self.warm_up()
        self._map_msrs()
        self._recompute()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def warm_up(self, power_w_per_socket: float = 70.0) -> None:
        """Pre-heat each socket to the steady state of a loaded run.

        The paper reports all numbers "from experiments run on a warm
        system" (Section II-C); this models that precondition.  A cold node
        (``warm=False``) starts at ambient and reproduces footnote 2.
        """
        for therm in self.thermal:
            therm.warm_to_steady_state(power_w_per_socket)

    def _map_msrs(self) -> None:
        for s in range(self.config.sockets):
            self.msr.map_package(
                s, MSR_PKG_ENERGY_STATUS, reader=self._make_energy_reader(s)
            )
            self.msr.map_package(
                s, MSR_RAPL_POWER_UNIT, reader=lambda: RAPL_POWER_UNIT_RAW
            )
            self.msr.map_package(
                s,
                MSR_PKG_POWER_LIMIT,
                reader=self._make_power_limit_reader(s),
                writer=self._make_power_limit_writer(s),
            )
        for core in self.cores:
            self.msr.map_core(
                core.index,
                IA32_CLOCK_MODULATION,
                reader=self._make_clockmod_reader(core.index),
                writer=self._make_clockmod_writer(core.index),
            )
            self.msr.map_core(
                core.index,
                IA32_THERM_STATUS,
                reader=self._make_therm_reader(core.socket),
            )
            self.msr.map_core(
                core.index, IA32_MPERF,
                reader=self._make_cycle_reader(core.index, "mperf_cycles"),
            )
            self.msr.map_core(
                core.index, IA32_APERF,
                reader=self._make_cycle_reader(core.index, "aperf_cycles"),
            )

    def _make_cycle_reader(self, core: int, attr: str) -> Callable[[], int]:
        def read() -> int:
            self._sync()
            return int(getattr(self.cores[core], attr))
        return read

    def _make_energy_reader(self, socket: int) -> Callable[[], int]:
        def read() -> int:
            self._sync()
            return self.rapl[socket].read_status()
        return read

    def _make_therm_reader(self, socket: int) -> Callable[[], int]:
        def read() -> int:
            self._sync()
            return self.thermal[socket].therm_status_raw()
        return read

    def _make_power_limit_reader(self, socket: int) -> Callable[[], int]:
        def read() -> int:
            return self._pkg_power_limit_raw[socket]
        return read

    def _make_power_limit_writer(self, socket: int) -> Callable[[int], None]:
        def write(value: int) -> None:
            self._pkg_power_limit_raw[socket] = value
        return write

    def _make_clockmod_reader(self, core: int) -> Callable[[], int]:
        def read() -> int:
            return self.cores[core].clock_mod_raw
        return read

    def _make_clockmod_writer(self, core: int) -> Callable[[int], None]:
        def write(value: int) -> None:
            # The write is architecturally visible immediately...
            self.cores[core].clock_mod_raw = value
            duty = decode_clock_modulation(value)
            # ...but the PLL takes a moment to retime: the paper measured
            # roughly 250 memory operations' worth of delay including call
            # and OS overhead (Section IV).
            delay = self.config.msr_write_mem_ops * self.config.memory.base_latency_s
            self.engine.schedule(
                delay,
                lambda: self.set_duty(core, duty),
                priority=Priority.MACHINE,
                label=f"clockmod-commit core={core}",
            )
        return write

    # ------------------------------------------------------------------
    # fluid model core
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Integrate state forward to the current simulation time.

        Runs on every MSR read and before every mutation, so the loop
        bodies are written flat: state constants and per-interval products
        are hoisted, and each core takes exactly one state dispatch.  The
        arithmetic (and its order) is unchanged.
        """
        now = self.engine.now
        dt = now - self._last_sync
        if dt <= 0.0:
            return
        for s in range(self.config.sockets):
            power = self._socket_power[s]
            mem = self._mem_state[s]
            self.rapl[s].add_energy(power * dt)
            self.counters[s].accumulate(mem.demand, mem.bw_util, power, dt)
            self.thermal[s].advance(power, dt)
        # dt * freq is the same product for every core; aperf's
        # ``dt * freq * duty`` associates left, so ``dtf * duty`` is the
        # identical float.
        dtf = dt * self.config.frequency_hz
        busy = CoreState.BUSY
        spin = CoreState.SPIN
        track = self.track_tag_energy
        for core in self.cores:
            state = core.state
            if state is busy:
                remaining = core.remaining - core.speed * dt
                core.remaining = remaining if remaining >= 0.0 else 0.0
                core.busy_seconds += dt
                if track and core.segment is not None:
                    leak = self.power_model.leakage_factor(
                        self.thermal[core.socket].temp_degc
                    )
                    joules = self.power_model.core_power_w(core, leak) * dt
                    tag = core.segment.tag or "(untagged)"
                    self.tag_energy_j[tag] = self.tag_energy_j.get(tag, 0.0) + joules
            elif state is spin:
                core.spin_seconds += dt
            else:
                continue
            # APERF/MPERF tick only in C0; APERF at the modulated rate.
            core.mperf_cycles += dtf
            core.aperf_cycles += dtf * core.duty
        self._last_sync = now
        probe = self._sync_probe
        if probe is not None:
            probe(dt)

    def _mark_rates_dirty(self, socket: int, *, busy_changed: bool = False) -> None:
        """Flag a socket for re-derivation on the next :meth:`_recompute`.

        ``busy_changed`` means the node-wide busy count moved (a core
        entered or left ``BUSY``): sockets hosting coherence-penalty
        segments must then be re-derived too, because their cores' latency
        stretch depends on that node-wide count.
        """
        dirty = self._rate_dirty
        dirty[socket] = True
        if busy_changed:
            coh = self._coh_in_socket
            for t in range(len(coh)):
                if coh[t]:
                    dirty[t] = True

    def _recompute(self) -> None:
        """Recompute contention, rates and power; reschedule completion.

        Memoized: only sockets marked dirty by a mutator re-derive demand
        and per-core rates; socket power re-prices when the rates changed
        *or* the die temperature moved since it was last priced (exact
        float comparison).  A clean socket's cached values are exactly what
        a full pass would recompute from the unchanged inputs, so skipping
        it cannot change a single bit of simulator output.  The inlined
        arithmetic below reproduces the :class:`~repro.hw.memory.MemoryModel`
        methods operation for operation (validation checks elided — every
        input was validated when the segment/duty was accepted).
        """
        now = self.engine.now
        dirty = self._rate_dirty
        thermal = self.thermal
        power_temp = self._power_temp
        sockets = self.config.sockets
        if now == self._recompute_now and True not in dirty:
            # Nothing mutated and time has not advanced; power is still
            # current unless something (warm_up, a test) moved a
            # temperature out from under us.
            for s in range(sockets):
                if thermal[s].temp_degc != power_temp[s]:
                    break
            else:
                return
        mm = self.memory_model
        mcfg = mm.config
        mlp = mcfg.mlp_per_core
        knee = mcfg.knee_refs
        default_alpha = mcfg.contention_exponent
        busy_state = CoreState.BUSY
        mem_state = self._mem_state
        busy_in = self._busy_in_socket
        coh_in = self._coh_in_socket
        for s in range(sockets):
            if not dirty[s]:
                continue
            demand = 0.0
            busy = 0
            coh = 0
            for core in self._socket_cores[s]:
                if core.state is busy_state and core.segment is not None:
                    demand += mlp * core.segment.mem_fraction
                    busy += 1
                    if core.segment.coherence_penalty > 0.0:
                        coh += 1
            busy_in[s] = busy
            coh_in[s] = coh
            if demand <= knee:
                stretch = 1.0
            else:
                stretch = (demand / knee) ** default_alpha
            mem_state[s] = SocketMemoryState(
                demand=demand,
                stretch=stretch,
                bw_util=0.0 if demand <= 0 else min(1.0, demand / knee),
            )
        busy_total = sum(busy_in)
        for s in range(sockets):
            if not dirty[s]:
                continue
            demand_s = mem_state[s].demand
            stretch_s = mem_state[s].stretch
            for core in self._socket_cores[s]:
                if core.state is busy_state and core.segment is not None:
                    seg = core.segment
                    exponent = seg.contention_exponent
                    if demand_s <= knee:
                        sigma = 1.0
                    elif exponent is None:
                        sigma = stretch_s
                    else:
                        sigma = (demand_s / knee) ** exponent
                    # Coherence ping-pong is node-wide and knee-free: every
                    # other busy core adds sharing latency.
                    if seg.coherence_penalty > 0.0 and busy_total > 1:
                        sigma += seg.coherence_penalty * (busy_total - 1)
                    mu = seg.mem_fraction
                    wall_stretch = (1.0 - mu) / core.duty + mu * sigma
                    core.speed = 1.0 / wall_stretch
                    core.mem_wall_fraction = (
                        (mu * sigma) / wall_stretch if wall_stretch > 0 else 0.0
                    )
                else:
                    core.speed = 0.0
                    core.mem_wall_fraction = 0.0
        pm = self.power_model
        for s in range(sockets):
            temp = thermal[s].temp_degc
            if dirty[s] or temp != power_temp[s]:
                self._socket_power[s] = pm.socket_power_w(
                    self._socket_cores[s],
                    mem_state[s].bw_util,
                    temp,
                )
                power_temp[s] = temp
            dirty[s] = False
        self._recompute_now = now
        self._schedule_completion()

    def _schedule_completion(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        dt_min = math.inf
        busy = CoreState.BUSY
        for core in self.cores:
            if core.state is busy and core.speed > 0.0:
                dt = core.remaining / core.speed
                if dt < dt_min:
                    dt_min = dt
        if math.isinf(dt_min):
            return
        self._completion = self.engine.schedule(
            max(dt_min, 0.0),
            self._on_completion,
            priority=Priority.MACHINE,
            label="segment-complete",
        )

    def _on_completion(self) -> None:
        self._completion = None
        self._sync()
        finished: list[Core] = []
        for core in self.cores:
            if core.state is CoreState.BUSY and (
                core.remaining <= core.speed * _COMPLETION_EPS_S
            ):
                finished.append(core)
        callbacks: list[Optional[Callable[[], Any]]] = []
        for core in finished:
            assert core.segment is not None
            core.segments_completed += 1
            core.work_done_solo_seconds += core.segment.solo_seconds
            callbacks.append(core.on_complete)
            core.segment = None
            core.on_complete = None
            core.remaining = 0.0
            core.state = CoreState.IDLE
            self._mark_rates_dirty(core.socket, busy_changed=True)
        # Recompute before callbacks so any state the callbacks observe
        # (power, contention) reflects the completions.
        self._recompute()
        for cb in callbacks:
            if cb is not None:
                cb()

    # ------------------------------------------------------------------
    # runtime-facing control
    # ------------------------------------------------------------------
    def assign(
        self,
        core_index: int,
        segment: Segment,
        on_complete: Optional[Callable[[], Any]] = None,
    ) -> None:
        """Start ``segment`` on an idle or spinning core.

        ``on_complete`` fires (via the event queue, never synchronously)
        when the segment finishes.
        """
        core = self.cores[core_index]
        if core.state is CoreState.BUSY:
            raise SimulationError(f"core {core_index} is already busy")
        if core.state is CoreState.OFF:
            raise SimulationError(f"core {core_index} is off")
        self._sync()
        core.state = CoreState.BUSY
        core.segment = segment
        core.remaining = segment.solo_seconds
        core.on_complete = on_complete
        self._mark_rates_dirty(core.socket, busy_changed=True)
        self._recompute()

    def _set_state(self, core_index: int, state: CoreState) -> None:
        core = self.cores[core_index]
        if core.state is CoreState.BUSY:
            raise SimulationError(
                f"core {core_index} is busy; cannot change state to {state}"
            )
        self._sync()
        core.state = state
        self._mark_rates_dirty(core.socket)
        self._recompute()

    def set_idle(self, core_index: int) -> None:
        """Return a core to the hardware-idle (power-gated) state."""
        self._set_state(core_index, CoreState.IDLE)

    def set_spin(self, core_index: int, duty: Optional[float] = None) -> None:
        """Put a core into the throttled spin loop (clocked, no work)."""
        core = self.cores[core_index]
        if core.state is CoreState.BUSY:
            raise SimulationError(f"core {core_index} is busy; cannot spin")
        self._sync()
        core.state = CoreState.SPIN
        if duty is not None:
            core.duty = duty
        self._mark_rates_dirty(core.socket)
        self._recompute()

    def set_off(self, core_index: int) -> None:
        """Park a core at the OS level (deep C-state, zero power)."""
        self._set_state(core_index, CoreState.OFF)

    def set_duty(self, core_index: int, duty: float) -> None:
        """Apply a duty-cycle fraction to a core, effective immediately.

        The MSR write path models the actuation latency and then calls
        this; tests and the DVFS ablation may call it directly.
        """
        if not (0.0 < duty <= 1.0):
            raise SimulationError(f"duty must be in (0,1], got {duty!r}")
        self._sync()
        core = self.cores[core_index]
        core.duty = duty
        self._mark_rates_dirty(core.socket)
        self._recompute()

    def set_sync_probe(self, probe: Optional[Callable[[float], None]]) -> None:
        """Install (or clear, with ``None``) the sync observer.

        The probe fires after the integrators advanced by ``dt`` seconds
        and must not mutate node state or call any syncing query — it
        observes :attr:`_socket_power` and the integrator outputs directly.
        Only one probe is supported; installing over an existing one is an
        error so two checkers cannot silently shadow each other.
        """
        if probe is not None and self._sync_probe is not None:
            raise SimulationError("node already has a sync probe installed")
        self._sync_probe = probe

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Bring all integrators and cached rates up to 'now'."""
        self._sync()
        self._recompute()

    def energy_j(self, socket: int) -> float:
        """Ground-truth accumulated energy of one socket, Joules."""
        self._sync()
        return self.rapl[socket].energy_j

    def total_energy_j(self) -> float:
        """Ground-truth accumulated energy of the whole node, Joules."""
        self._sync()
        return sum(dom.energy_j for dom in self.rapl)

    def power_w(self, socket: int) -> float:
        """Instantaneous power of one socket, Watts."""
        self.refresh()
        return self._socket_power[socket]

    def total_power_w(self) -> float:
        """Instantaneous power of the whole node, Watts."""
        self.refresh()
        return sum(self._socket_power)

    def temp_degc(self, socket: int) -> float:
        """Current die temperature of one socket."""
        self._sync()
        return self.thermal[socket].temp_degc

    def memory_state(self, socket: int) -> SocketMemoryState:
        """Instantaneous contention state of one socket."""
        self.refresh()
        return self._mem_state[socket]

    def counters_snapshot(self, socket: int) -> CounterSnapshot:
        """Snapshot of a socket's time-integrated counters."""
        self._sync()
        return snapshot(self.counters[socket])

    def window(self, socket: int, since: CounterSnapshot):
        """Averages between ``since`` and now (see perfctr.window_average)."""
        return window_average(since, self.counters_snapshot(socket))

    @property
    def busy_core_count(self) -> int:
        """Number of cores currently executing a segment."""
        return sum(1 for c in self.cores if c.state is CoreState.BUSY)

    @property
    def spinning_core_count(self) -> int:
        """Number of cores currently in the throttled spin loop."""
        return sum(1 for c in self.cores if c.state is CoreState.SPIN)
