"""Instantaneous socket power model.

Per-socket package power is the sum of:

* temperature-dependent static power — uncore (LLC, ring, memory
  controller) plus per-core idle or active-base power, all scaled by a
  linear leakage factor ``1 + k * (T - T_ref)``.  The leakage term is what
  reproduces the paper's observation (footnote 2) that a cold chip draws
  measurably less power for identical work;
* per-core dynamic power — full-rate issue power scaled by the duty cycle
  and the fraction of wall time actually issuing, plus stall power for the
  fraction of wall time blocked on memory;
* bandwidth-proportional memory-controller power.

Calibration of the constants against the paper's measured wattages is
documented in :class:`repro.config.PowerConfig`.
"""

from __future__ import annotations

from typing import Iterable

from repro.config import PowerConfig
from repro.hw.core import Core, CoreState


def reference_socket_power_w(
    config: PowerConfig,
    cores: Iterable[Core],
    bw_util: float,
    temp_degc: float,
) -> float:
    """Memo-free socket power for differential checks.

    Evaluates :meth:`PowerModel.socket_power_w` on a *fresh* model so no
    cached leakage pair can mask a stale-memo bug.  The invariant checker
    compares this against the node's cached ``_socket_power`` at the
    temperature the cache was priced at; the two must match bit for bit.
    """
    return PowerModel(config).socket_power_w(cores, bw_util, temp_degc)


class PowerModel:
    """Stateless power arithmetic for one socket.

    The only state is a one-entry memo on :meth:`leakage_factor`: callers
    evaluate it repeatedly at the *same* temperature (once per core during
    a sync or a socket-power sum), and socket temperature only moves when
    simulated time does, so the last ``(temp, factor)`` pair hits almost
    every call within one integration step.  The memo returns the exact
    float the formula would produce, so results are bit-identical.
    """

    def __init__(self, config: PowerConfig) -> None:
        config.validate()
        self.config = config
        self._leak_temp: float | None = None
        self._leak_factor: float = 1.0

    def leakage_factor(self, temp_degc: float) -> float:
        """Leakage multiplier on static power at ``temp_degc``."""
        if temp_degc == self._leak_temp:
            return self._leak_factor
        factor = 1.0 + self.config.leakage_per_degc * (
            temp_degc - self.config.leakage_ref_degc
        )
        # Leakage cannot make static power negative no matter how cold the
        # model is driven in tests.
        factor = max(0.1, factor)
        self._leak_temp = temp_degc
        self._leak_factor = factor
        return factor

    def core_power_w(self, core: Core, leak: float) -> float:
        """Instantaneous power of one core given the leakage factor."""
        cfg = self.config
        if core.state is CoreState.OFF:
            return 0.0
        if core.state is CoreState.IDLE:
            return cfg.core_idle_w * leak
        if core.state is CoreState.SPIN:
            # Clocked but doing no work: active base (leaky) plus the
            # duty-modulated issue power of the spin loop itself.
            return cfg.core_active_base_w * leak + cfg.core_cpu_w * core.duty
        # BUSY
        scale = core.segment.power_scale if core.segment is not None else 1.0
        mu_wall = core.mem_wall_fraction
        dynamic = (
            cfg.core_cpu_w * core.duty * (1.0 - mu_wall)
            + cfg.core_stall_w * mu_wall
        )
        return scale * (cfg.core_active_base_w * leak + dynamic)

    def socket_power_w(
        self,
        cores: Iterable[Core],
        bw_util: float,
        temp_degc: float,
    ) -> float:
        """Total package power of one socket.

        Inlines :meth:`core_power_w` with the same per-core expressions and
        the same accumulation order, so the sum is bit-identical to calling
        it in a loop — this method runs once per socket on every machine
        rate change, which makes it one of the simulator's hottest sums.
        """
        cfg = self.config
        leak = self.leakage_factor(temp_degc)
        total = cfg.uncore_w * leak
        idle_w = cfg.core_idle_w
        base_w = cfg.core_active_base_w
        cpu_w = cfg.core_cpu_w
        stall_w = cfg.core_stall_w
        busy = CoreState.BUSY
        idle = CoreState.IDLE
        spin = CoreState.SPIN
        for core in cores:
            state = core.state
            if state is busy:
                segment = core.segment
                scale = segment.power_scale if segment is not None else 1.0
                mu_wall = core.mem_wall_fraction
                dynamic = cpu_w * core.duty * (1.0 - mu_wall) + stall_w * mu_wall
                total += scale * (base_w * leak + dynamic)
            elif state is idle:
                total += idle_w * leak
            elif state is spin:
                total += base_w * leak + cpu_w * core.duty
            # OFF contributes exactly 0.0; skipping the add leaves the
            # (strictly positive) total bit-identical.
        total += cfg.bandwidth_w * max(0.0, min(1.0, bw_util))
        return total
