"""Instantaneous socket power model.

Per-socket package power is the sum of:

* temperature-dependent static power — uncore (LLC, ring, memory
  controller) plus per-core idle or active-base power, all scaled by a
  linear leakage factor ``1 + k * (T - T_ref)``.  The leakage term is what
  reproduces the paper's observation (footnote 2) that a cold chip draws
  measurably less power for identical work;
* per-core dynamic power — full-rate issue power scaled by the duty cycle
  and the fraction of wall time actually issuing, plus stall power for the
  fraction of wall time blocked on memory;
* bandwidth-proportional memory-controller power.

Calibration of the constants against the paper's measured wattages is
documented in :class:`repro.config.PowerConfig`.
"""

from __future__ import annotations

from typing import Iterable

from repro.config import PowerConfig
from repro.hw.core import Core, CoreState


class PowerModel:
    """Stateless power arithmetic for one socket."""

    def __init__(self, config: PowerConfig) -> None:
        config.validate()
        self.config = config

    def leakage_factor(self, temp_degc: float) -> float:
        """Leakage multiplier on static power at ``temp_degc``."""
        factor = 1.0 + self.config.leakage_per_degc * (
            temp_degc - self.config.leakage_ref_degc
        )
        # Leakage cannot make static power negative no matter how cold the
        # model is driven in tests.
        return max(0.1, factor)

    def core_power_w(self, core: Core, leak: float) -> float:
        """Instantaneous power of one core given the leakage factor."""
        cfg = self.config
        if core.state is CoreState.OFF:
            return 0.0
        if core.state is CoreState.IDLE:
            return cfg.core_idle_w * leak
        if core.state is CoreState.SPIN:
            # Clocked but doing no work: active base (leaky) plus the
            # duty-modulated issue power of the spin loop itself.
            return cfg.core_active_base_w * leak + cfg.core_cpu_w * core.duty
        # BUSY
        scale = core.segment.power_scale if core.segment is not None else 1.0
        mu_wall = core.mem_wall_fraction
        dynamic = (
            cfg.core_cpu_w * core.duty * (1.0 - mu_wall)
            + cfg.core_stall_w * mu_wall
        )
        return scale * (cfg.core_active_base_w * leak + dynamic)

    def socket_power_w(
        self,
        cores: Iterable[Core],
        bw_util: float,
        temp_degc: float,
    ) -> float:
        """Total package power of one socket."""
        leak = self.leakage_factor(temp_degc)
        total = self.config.uncore_w * leak
        for core in cores:
            total += self.core_power_w(core, leak)
        total += self.config.bandwidth_w * max(0.0, min(1.0, bw_util))
        return total
