"""Shared memory-subsystem contention model.

Follows the concurrency framing of Mandel et al. [10], which the paper's
throttling policy is built on: each socket has an *effective maximum number
of outstanding memory references* (the knee ``K``).  Below the knee,
additional references increase bandwidth at flat latency; above it,
bandwidth stops improving and latency grows.

Model
-----
Every busy core contributes an outstanding-reference demand
``o_i = mlp * mu_i`` where ``mu_i`` is the memory fraction of its current
work segment.  With socket demand ``N = sum(o_i)`` the latency stretch is::

    sigma(N) = max(1, (N / K) ** alpha)

``alpha = 1`` makes aggregate bandwidth exactly flat beyond the knee;
``alpha > 1`` models queueing collapse, where aggregate throughput *falls*
as more requesters pile on.  That regime is what lets the paper's dijkstra
run *faster* on 12 threads than 16 (Table V) — reproducing it requires
alpha > 1, which is why it is a configurable model parameter.

Bandwidth utilisation ``min(1, N / K)`` is the "memory bandwidth" metric
the RCRdaemon classifies against its 75%/25% thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemoryConfig


@dataclass(slots=True)
class SocketMemoryState:
    """Mutable per-socket contention state, updated on every rate change."""

    #: Total outstanding-reference demand from busy cores.
    demand: float = 0.0
    #: Current latency stretch factor sigma(N) >= 1.
    stretch: float = 1.0
    #: Bandwidth utilisation in [0, 1] (the RCR metric).
    bw_util: float = 0.0


class MemoryModel:
    """Stateless contention arithmetic for one socket's memory subsystem."""

    def __init__(self, config: MemoryConfig) -> None:
        config.validate()
        self.config = config

    def core_demand(self, mem_fraction: float) -> float:
        """Outstanding-reference demand of a core running a segment."""
        if not (0.0 <= mem_fraction <= 1.0):
            raise ValueError(f"mem_fraction must be in [0,1], got {mem_fraction!r}")
        return self.config.mlp_per_core * mem_fraction

    def stretch(self, demand: float, exponent: float | None = None) -> float:
        """Latency stretch sigma(N) for total socket demand ``demand``.

        ``exponent`` lets a requester's access pattern override the
        machine default: the *occupancy* (demand) is shared socket state,
        but how much a given pattern suffers from queueing above the knee
        is pattern-specific (streaming prefetches tolerate queueing that
        destroys dependent pointer chases).
        """
        if demand <= self.config.knee_refs:
            return 1.0
        ratio = demand / self.config.knee_refs
        alpha = self.config.contention_exponent if exponent is None else exponent
        if alpha < 1.0:
            raise ValueError(f"contention exponent must be >= 1, got {alpha!r}")
        return ratio ** alpha

    def bandwidth_util(self, demand: float) -> float:
        """Fraction of peak bandwidth in use, saturating at the knee."""
        if demand <= 0:
            return 0.0
        return min(1.0, demand / self.config.knee_refs)

    def evaluate(self, demand: float) -> SocketMemoryState:
        """Full contention state for a given total demand."""
        return SocketMemoryState(
            demand=demand,
            stretch=self.stretch(demand),
            bw_util=self.bandwidth_util(demand),
        )

    def execution_stretch(self, mem_fraction: float, duty: float, sigma: float) -> float:
        """Wall-time stretch of a segment relative to its solo duration.

        A segment whose solo time is split ``(1 - mu)`` compute / ``mu``
        memory runs its compute portion at the core's duty-modulated clock
        and its memory portion at the contention-stretched latency::

            stretch = (1 - mu) / duty + mu * sigma

        Duty-cycle modulation gates the core clock, not the memory
        controller, so the memory term is duty-independent.  (In this
        paper's design only *spinning* cores are duty-throttled, and a spin
        loop has ``mu = 0``; the general formula also supports the DVFS
        ablation.)
        """
        if not (0.0 < duty <= 1.0):
            raise ValueError(f"duty must be in (0,1], got {duty!r}")
        if sigma < 1.0:
            raise ValueError(f"sigma must be >= 1, got {sigma!r}")
        return (1.0 - mem_fraction) / duty + mem_fraction * sigma

    def memory_wall_fraction(self, mem_fraction: float, duty: float, sigma: float) -> float:
        """Fraction of *wall time* the core spends stalled on memory.

        Used by the power model: a stalled core draws stall power, not
        issue power.
        """
        total = self.execution_stretch(mem_fraction, duty, sigma)
        if total <= 0:
            return 0.0
        return (mem_fraction * sigma) / total
