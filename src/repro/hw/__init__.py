"""Simulated hardware substrate.

Models the paper's test system: a two-socket Intel Sandybridge (Xeon
E5-2680) node with per-core duty-cycle control, a shared memory subsystem
with a concurrency/bandwidth saturation model, per-socket RAPL energy
counters behind an MSR interface, and a first-order thermal model.

The central class is :class:`repro.hw.node.Node`, which owns the fluid
execution model: busy cores drain work segments at piecewise-constant rates
that are recomputed whenever machine state changes.
"""

from repro.hw.core import Core, CoreState, Segment
from repro.hw.memory import MemoryModel, SocketMemoryState
from repro.hw.msr import (
    IA32_CLOCK_MODULATION,
    IA32_THERM_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    MSRFile,
    decode_clock_modulation,
    encode_clock_modulation,
)
from repro.hw.node import Node
from repro.hw.power import PowerModel
from repro.hw.rapl import RaplDomain
from repro.hw.thermal import ThermalState
from repro.hw.topology import CoreId, Topology

__all__ = [
    "Core",
    "CoreId",
    "CoreState",
    "IA32_CLOCK_MODULATION",
    "IA32_THERM_STATUS",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_PKG_POWER_LIMIT",
    "MSR_RAPL_POWER_UNIT",
    "MSRFile",
    "MemoryModel",
    "Node",
    "PowerModel",
    "RaplDomain",
    "Segment",
    "SocketMemoryState",
    "ThermalState",
    "Topology",
    "decode_clock_modulation",
    "encode_clock_modulation",
]
