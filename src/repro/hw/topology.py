"""Node topology: sockets and cores.

Cores are identified both by a flat global index (0..15 on the paper's
blade) and by a ``(socket, local_index)`` pair.  The scheduler's shepherd
mapping and the memory model's per-socket contention both key off the
socket, so the helpers here are used everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError


@dataclass(frozen=True, order=True)
class CoreId:
    """Identity of one core within the node."""

    socket: int
    local: int

    def flat(self, cores_per_socket: int) -> int:
        """Flat global index of this core."""
        return self.socket * cores_per_socket + self.local


class Topology:
    """Socket/core layout of the node."""

    def __init__(self, sockets: int, cores_per_socket: int) -> None:
        if sockets <= 0 or cores_per_socket <= 0:
            raise ConfigError("topology dimensions must be positive")
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def core_id(self, flat: int) -> CoreId:
        """CoreId for a flat index."""
        if not (0 <= flat < self.total_cores):
            raise ConfigError(
                f"core index {flat} out of range 0..{self.total_cores - 1}"
            )
        return CoreId(flat // self.cores_per_socket, flat % self.cores_per_socket)

    def socket_of(self, flat: int) -> int:
        """Socket number of a flat core index."""
        return self.core_id(flat).socket

    def cores_in_socket(self, socket: int) -> range:
        """Flat indices of all cores in ``socket``."""
        if not (0 <= socket < self.sockets):
            raise ConfigError(f"socket {socket} out of range 0..{self.sockets - 1}")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    def all_cores(self) -> Iterator[int]:
        """Flat indices of every core."""
        return iter(range(self.total_cores))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Topology({self.sockets}x{self.cores_per_socket})"
