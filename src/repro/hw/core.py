"""Per-core execution state.

A core is in one of four states:

* ``OFF`` — parked by the OS (deep C-state): zero power, no demand.  This
  models the paper's "turning the threads off at the OS level" comparison
  (Table IV discussion).
* ``IDLE`` — power-gated but available: draws only ``core_idle_w``.
* ``BUSY`` — draining a work :class:`Segment` at the fluid rate computed
  by the node.
* ``SPIN`` — a throttled worker in the MAESTRO spin loop: clocked (C0) but
  doing no productive work, normally at 1/32 duty.  Draws active-base
  power plus duty-scaled issue power; contributes no memory demand.

Work is measured in *solo-seconds*: the wall time the segment would take on
one core at nominal frequency with an uncontended memory system.  The
node's rate model converts solo-seconds to wall time under the current
duty cycle and contention (see :mod:`repro.hw.memory`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class CoreState(enum.Enum):
    """Power/activity state of a core."""

    OFF = "off"
    IDLE = "idle"
    BUSY = "busy"
    SPIN = "spin"


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous piece of work executed by a core.

    Attributes
    ----------
    solo_seconds:
        Duration on an unloaded machine at nominal frequency.
    mem_fraction:
        Share of the solo duration spent waiting on DRAM (``mu``).
    power_scale:
        Multiplier on the core's active power while running this segment;
        carries instruction-mix differences between applications and
        compilers (an AVX-heavy Strassen draws more than a pointer-chasing
        health simulation).
    contention_exponent:
        Latency-growth exponent this segment's access pattern experiences
        above the memory knee (``None`` = the machine default).  Streaming
        patterns saturate flat (~1.0); irregular patterns (pointer
        chasing) collapse super-linearly (~2).
    coherence_penalty:
        Cache-line sharing cost: each *other* busy core on the node adds
        this much latency stretch to the segment's memory portion,
        knee-free — coherence misses ping-pong between sharers from the
        second participant onward.  This is the mechanism behind the
        paper's programs whose *serial* version beats every parallel one
        (uncut fibonacci's task-queue lines, reduction's accumulator
        lines; Section II-C.4).
    tag:
        Free-form label used by traces and tests.
    """

    solo_seconds: float
    mem_fraction: float = 0.0
    power_scale: float = 1.0
    contention_exponent: float | None = None
    coherence_penalty: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.solo_seconds < 0:
            raise ValueError(f"solo_seconds must be >= 0, got {self.solo_seconds!r}")
        if not (0.0 <= self.mem_fraction <= 1.0):
            raise ValueError(f"mem_fraction must be in [0,1], got {self.mem_fraction!r}")
        if self.power_scale <= 0:
            raise ValueError(f"power_scale must be positive, got {self.power_scale!r}")
        if self.contention_exponent is not None and self.contention_exponent < 1.0:
            raise ValueError(
                f"contention_exponent must be >= 1, got {self.contention_exponent!r}"
            )
        if self.coherence_penalty < 0.0:
            raise ValueError(
                f"coherence_penalty must be >= 0, got {self.coherence_penalty!r}"
            )


@dataclass(slots=True)
class Core:
    """Mutable per-core state owned by the node.

    ``slots=True`` matters here: every field is read in the node's
    per-event sync/recompute loops, and slot access skips the instance
    ``__dict__`` lookup on each of them.
    """

    index: int
    socket: int
    state: CoreState = CoreState.IDLE
    #: Effective duty-cycle fraction (1.0 = unmodulated).
    duty: float = 1.0
    #: Raw value last written to IA32_CLOCK_MODULATION (for MSR readback).
    clock_mod_raw: int = 0
    #: Segment currently executing (BUSY only).
    segment: Optional[Segment] = None
    #: Remaining solo-seconds of the current segment.
    remaining: float = 0.0
    #: Completion callback for the current segment.
    on_complete: Optional[Callable[[], Any]] = None
    #: Cached progress rate in solo-seconds per wall second (BUSY only).
    speed: float = 0.0
    #: Cached fraction of wall time stalled on memory (power model input).
    mem_wall_fraction: float = 0.0

    # -- lifetime accounting (performance counters) --------------------
    busy_seconds: float = field(default=0.0)
    spin_seconds: float = field(default=0.0)
    work_done_solo_seconds: float = field(default=0.0)
    segments_completed: int = field(default=0)
    #: IA32_MPERF: reference (TSC-rate) cycles while in C0.
    mperf_cycles: float = field(default=0.0)
    #: IA32_APERF: actual (duty-modulated) cycles while in C0.  The ratio
    #: APERF/MPERF is how software observes clock modulation.
    aperf_cycles: float = field(default=0.0)

    @property
    def is_busy(self) -> bool:
        return self.state is CoreState.BUSY

    @property
    def is_spinning(self) -> bool:
        return self.state is CoreState.SPIN

    @property
    def demand_fraction(self) -> float:
        """Memory fraction the core currently presents to its socket."""
        if self.state is CoreState.BUSY and self.segment is not None:
            return self.segment.mem_fraction
        return 0.0
