"""Model-specific register (MSR) interface.

The paper's measurement and control paths all go through MSRs:

* ``MSR_PKG_ENERGY_STATUS`` (0x611) — the RAPL per-package energy counter,
  15.3 microJoule units, 32 bits, wraps in a few minutes (Section II-A);
* ``IA32_THERM_STATUS`` (0x19C) — per-package digital temperature readout;
* ``IA32_CLOCK_MODULATION`` (0x19A) — per-core duty-cycle control, the
  actuation mechanism the MAESTRO throttler uses instead of DVFS
  (Section IV);
* ``MSR_RAPL_POWER_UNIT`` (0x606) and ``MSR_PKG_POWER_LIMIT`` (0x610) —
  used by the power-clamping extension.

Both the register addresses and the access semantics (kernel permission
required, footnote 3 of the paper; an MSR write costs ~250 memory
operations including call and OS overhead) are modelled so clients are
structured exactly like real RAPL tooling.

Registers are backed by reader/writer hooks registered by the devices that
own them (the RAPL domain, the thermal model, each core).  The MSR file
itself is just an address decoder with a permission gate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import MSRAddressError, MSRPermissionError

# Architectural MSR addresses (Intel SDM vol. 4, Sandybridge).
IA32_MPERF = 0xE7
IA32_APERF = 0xE8
IA32_CLOCK_MODULATION = 0x19A
IA32_THERM_STATUS = 0x19C
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611

#: Value of MSR_RAPL_POWER_UNIT matching a 15.3 uJ energy unit.  The
#: architectural encoding stores the energy unit in bits 12:8 as
#: ``1 / 2**ESU`` Joules; 2**-16 J = 15.26 uJ is the Sandybridge value the
#: paper rounds to 15.3 uJ.  We expose the architectural encoding but the
#: simulator's unit constant is exactly 15.3 uJ (see repro.units).
RAPL_POWER_UNIT_RAW = 0x10 << 8

ReadHook = Callable[[], int]
WriteHook = Callable[[int], None]


def encode_clock_modulation(duty: float, *, steps: int = 32) -> int:
    """Encode a duty-cycle fraction as an IA32_CLOCK_MODULATION value.

    Layout (extended modulation): bit 4 = enable, bits 3:0 = level, where
    the effective duty cycle is ``level / steps``.  ``duty >= 1`` disables
    modulation entirely (enable bit clear), which is how the runtime
    restores full speed.
    """
    if duty <= 0:
        raise ValueError(f"duty must be positive, got {duty!r}")
    if duty >= 1.0:
        return 0
    level = max(1, round(duty * steps))
    if level >= steps:
        return 0
    # Extended clock modulation packs level into bits 3:0 with 1/16 (or
    # with the extension bit, 1/32) granularity; we model 1/32 steps with
    # a 5-bit level field below the enable bit for clarity.
    return (1 << 5) | level


def decode_clock_modulation(raw: int, *, steps: int = 32) -> float:
    """Decode IA32_CLOCK_MODULATION into an effective duty fraction."""
    if raw < 0:
        raise ValueError(f"register value must be non-negative, got {raw!r}")
    enabled = bool(raw & (1 << 5))
    if not enabled:
        return 1.0
    level = raw & 0x1F
    if level == 0:
        # Architecturally reserved; hardware treats it as the minimum step.
        level = 1
    return level / steps


def is_legal_clock_modulation(raw: int, *, steps: int = 32) -> bool:
    """Strict legality of an IA32_CLOCK_MODULATION value.

    Stricter than :func:`decode_clock_modulation`, which forgives the
    architecturally reserved level 0: legal values are exactly 0 (disabled)
    or enable bit + level in ``[1, steps - 1]`` with no stray bits.  The
    invariant checker uses this to flag writes the decoder would quietly
    paper over.
    """
    if raw == 0:
        return True
    if raw < 0 or raw & ~((1 << 5) | 0x1F):
        return False
    if not raw & (1 << 5):
        return False  # level bits without the enable bit
    level = raw & 0x1F
    return 1 <= level <= steps - 1


class MSRFile:
    """Address-decoded register file with a supervisor permission gate.

    Scope: registers are keyed by ``(unit, address)`` where ``unit`` is a
    flat core index for per-core MSRs and a socket index for package MSRs.
    The caller picks the right keyspace via :meth:`read_core` /
    :meth:`read_package` (mirroring how ``/dev/cpu/*/msr`` exposes package
    MSRs through any core of the package).
    """

    def __init__(self) -> None:
        self._core_regs: dict[tuple[int, int], tuple[Optional[ReadHook], Optional[WriteHook]]] = {}
        self._pkg_regs: dict[tuple[int, int], tuple[Optional[ReadHook], Optional[WriteHook]]] = {}

    # ------------------------------------------------------------------
    # registration (device side)
    # ------------------------------------------------------------------
    def map_core(self, core: int, address: int,
                 reader: Optional[ReadHook] = None,
                 writer: Optional[WriteHook] = None) -> None:
        """Back a per-core MSR with device hooks."""
        self._core_regs[(core, address)] = (reader, writer)

    def map_package(self, socket: int, address: int,
                    reader: Optional[ReadHook] = None,
                    writer: Optional[WriteHook] = None) -> None:
        """Back a per-package MSR with device hooks."""
        self._pkg_regs[(socket, address)] = (reader, writer)

    # ------------------------------------------------------------------
    # access (client side)
    # ------------------------------------------------------------------
    @staticmethod
    def _check_privilege(privileged: bool, what: str) -> None:
        if not privileged:
            raise MSRPermissionError(
                f"{what} requires supervisor (kernel) permission; "
                "run the daemon as root (paper, footnote 3)"
            )

    def read_core(self, core: int, address: int, *, privileged: bool = False) -> int:
        """Read a per-core MSR."""
        self._check_privilege(privileged, f"rdmsr core={core} addr={address:#x}")
        entry = self._core_regs.get((core, address))
        if entry is None or entry[0] is None:
            raise MSRAddressError(f"unmapped core MSR {address:#x} on core {core}")
        return entry[0]()

    def write_core(self, core: int, address: int, value: int, *, privileged: bool = False) -> None:
        """Write a per-core MSR."""
        self._check_privilege(privileged, f"wrmsr core={core} addr={address:#x}")
        entry = self._core_regs.get((core, address))
        if entry is None or entry[1] is None:
            raise MSRAddressError(f"core MSR {address:#x} on core {core} is not writable")
        entry[1](value)

    def read_package(self, socket: int, address: int, *, privileged: bool = False) -> int:
        """Read a per-package MSR."""
        self._check_privilege(privileged, f"rdmsr pkg={socket} addr={address:#x}")
        entry = self._pkg_regs.get((socket, address))
        if entry is None or entry[0] is None:
            raise MSRAddressError(f"unmapped package MSR {address:#x} on socket {socket}")
        return entry[0]()

    def write_package(self, socket: int, address: int, value: int, *, privileged: bool = False) -> None:
        """Write a per-package MSR."""
        self._check_privilege(privileged, f"wrmsr pkg={socket} addr={address:#x}")
        entry = self._pkg_regs.get((socket, address))
        if entry is None or entry[1] is None:
            raise MSRAddressError(f"package MSR {address:#x} on socket {socket} is not writable")
        entry[1](value)
