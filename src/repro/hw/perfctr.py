"""Hardware performance counters.

Aggregated, time-weighted counters maintained by the node's
synchronisation step and read by the RCRdaemon and the test suite.

Per socket:

* accumulated energy (via the RAPL domain, see :mod:`repro.hw.rapl`);
* the time integral of outstanding-reference demand, whose windowed
  average is the "number of outstanding memory references" metric the
  throttling model classifies (Section IV-A, after Mandel et al. [10]);
* the time integral of bandwidth utilisation;
* the time integral of power (for exact average-power queries).

Per core: busy/spin time, completed solo-work, completed segment count
(kept on :class:`repro.hw.core.Core` itself; surfaced here).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SocketCounters:
    """Time-integrated per-socket counters."""

    #: Integral of outstanding-reference demand over time (refs * s).
    demand_integral: float = 0.0
    #: Integral of bandwidth utilisation over time (s).
    bw_util_integral: float = 0.0
    #: Integral of power over time (J) — equals RAPL energy, tracked
    #: separately so tests can cross-check the two accumulation paths.
    power_integral_j: float = 0.0
    #: Wall time covered by the integrals (s).
    elapsed_s: float = 0.0

    def accumulate(self, demand: float, bw_util: float, power_w: float, dt: float) -> None:
        """Fold one piecewise-constant interval into the integrals."""
        self.demand_integral += demand * dt
        self.bw_util_integral += bw_util * dt
        self.power_integral_j += power_w * dt
        self.elapsed_s += dt


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of a socket's counters, used for window deltas."""

    demand_integral: float
    bw_util_integral: float
    power_integral_j: float
    elapsed_s: float


@dataclass
class WindowDelta:
    """Averages over a window between two snapshots."""

    avg_demand: float = 0.0
    avg_bw_util: float = 0.0
    avg_power_w: float = 0.0
    elapsed_s: float = 0.0


def snapshot(counters: SocketCounters) -> CounterSnapshot:
    """Capture the current integral values."""
    return CounterSnapshot(
        demand_integral=counters.demand_integral,
        bw_util_integral=counters.bw_util_integral,
        power_integral_j=counters.power_integral_j,
        elapsed_s=counters.elapsed_s,
    )


def window_average(before: CounterSnapshot, after: CounterSnapshot) -> WindowDelta:
    """Time-averaged metrics between two snapshots.

    A zero-length window yields zeros rather than NaNs: the RCRdaemon can
    tick twice at the same instant at simulation start.
    """
    dt = after.elapsed_s - before.elapsed_s
    if dt <= 0:
        return WindowDelta()
    return WindowDelta(
        avg_demand=(after.demand_integral - before.demand_integral) / dt,
        avg_bw_util=(after.bw_util_integral - before.bw_util_integral) / dt,
        avg_power_w=(after.power_integral_j - before.power_integral_j) / dt,
        elapsed_s=dt,
    )
