"""Energy-aware cluster job scheduler (extension subsystem).

The paper measures and throttles *one* node; its conclusion argues the
mechanisms "would operate well within a multi-node power clamping
environment".  This package builds that environment's missing tenant: a
cluster-level scheduler that places an open-loop stream of OpenMP jobs
onto power-budgeted nodes — and scales it to million-job traces via
streaming everything.

* :mod:`~repro.sched.workload` — deterministic seeded arrival traces
  (steady / poisson / bursty / diurnal) over the app registry, yielded
  lazily by :func:`~repro.sched.workload.iter_trace`;
* :mod:`~repro.sched.queue` — bounded admission queue with shedding;
* :mod:`~repro.sched.policy` — pluggable placement policies (FCFS,
  best-fit power packing, EDP-greedy, power-aware water-filling, and
  the profile-driven ``predicted`` policy backed by
  :mod:`repro.cosched`);
* :mod:`~repro.sched.cluster` — the multi-node simulation: sequential
  jobs per node, the global :class:`~repro.cluster.coordinator.\
PowerCoordinator` re-dividing the budget, hardened teardown, windowed
  streaming arrivals;
* :mod:`~repro.sched.sketch` / :mod:`~repro.sched.aggregate` — the
  streaming aggregation spine: deterministic quantile sketches and O(1)
  accumulators so result size is independent of job count;
* :mod:`~repro.sched.checkpoint` — segmented execution with atomic
  snapshots: kill-and-resume is bit-identical to an uninterrupted run;
* :mod:`~repro.sched.analytic` / :mod:`~repro.sched.roofline` — the
  closed-form (Afzal-style roofline) execution mode and per-run oracle
  that make million-job sweeps tractable and auditable;
* :mod:`~repro.sched.spec` / :mod:`~repro.sched.result` — digestable
  specs and picklable SLO results that ride the harness cache and
  process-pool fan-out unchanged;
* :mod:`~repro.sched.telemetry` — typed per-job events on the
  existing telemetry bus.
"""

from repro.sched.aggregate import SchedAccumulator, SchedStats
from repro.sched.analytic import AnalyticSim, run_analytic
from repro.sched.checkpoint import (
    SchedCheckpoint,
    checkpoint_path,
    load_checkpoint,
    run_segmented,
    save_checkpoint,
)
from repro.sched.cluster import ClusterSim, SchedNode, build_result, run_sched
from repro.sched.policy import (
    POLICIES,
    ClusterState,
    NodeView,
    PlacementPolicy,
    PredictedPlacement,
    estimate_job_power_w,
    make_policy,
)
from repro.sched.queue import AdmissionQueue
from repro.sched.result import JobRecord, SchedResult, percentile
from repro.sched.roofline import RooflinePoint, job_cost, roofline_envelope
from repro.sched.sketch import QuantileSketch
from repro.sched.spec import EXECUTION_MODES, SchedSpec
from repro.sched.workload import (
    DEFAULT_JOB_APPS,
    TRACE_PROFILES,
    Job,
    generate_trace,
    iter_trace,
    offered_load_summary,
)

__all__ = [
    "AdmissionQueue",
    "AnalyticSim",
    "ClusterSim",
    "ClusterState",
    "DEFAULT_JOB_APPS",
    "EXECUTION_MODES",
    "Job",
    "JobRecord",
    "NodeView",
    "POLICIES",
    "PlacementPolicy",
    "PredictedPlacement",
    "QuantileSketch",
    "RooflinePoint",
    "SchedAccumulator",
    "SchedCheckpoint",
    "SchedNode",
    "SchedResult",
    "SchedSpec",
    "SchedStats",
    "TRACE_PROFILES",
    "build_result",
    "checkpoint_path",
    "estimate_job_power_w",
    "generate_trace",
    "iter_trace",
    "job_cost",
    "load_checkpoint",
    "make_policy",
    "offered_load_summary",
    "percentile",
    "roofline_envelope",
    "run_analytic",
    "run_sched",
    "run_segmented",
    "save_checkpoint",
]
