"""Energy-aware cluster job scheduler (extension subsystem).

The paper measures and throttles *one* node; its conclusion argues the
mechanisms "would operate well within a multi-node power clamping
environment".  This package builds that environment's missing tenant: a
cluster-level scheduler that places an open-loop stream of OpenMP jobs
onto power-budgeted nodes.

* :mod:`~repro.sched.workload` — deterministic seeded arrival traces
  (steady / poisson / bursty / diurnal) over the app registry;
* :mod:`~repro.sched.queue` — bounded admission queue with shedding;
* :mod:`~repro.sched.policy` — pluggable placement policies (FCFS,
  best-fit power packing, EDP-greedy, power-aware water-filling);
* :mod:`~repro.sched.cluster` — the multi-node simulation: sequential
  jobs per node, the global :class:`~repro.cluster.coordinator.\
PowerCoordinator` re-dividing the budget, hardened teardown;
* :mod:`~repro.sched.spec` / :mod:`~repro.sched.result` — digestable
  specs and picklable SLO results that ride the harness cache and
  process-pool fan-out unchanged;
* :mod:`~repro.sched.telemetry` — typed per-job events on the
  existing telemetry bus.
"""

from repro.sched.cluster import ClusterSim, SchedNode, run_sched
from repro.sched.policy import (
    POLICIES,
    ClusterState,
    NodeView,
    PlacementPolicy,
    estimate_job_power_w,
    make_policy,
)
from repro.sched.queue import AdmissionQueue
from repro.sched.result import JobRecord, SchedResult, percentile
from repro.sched.spec import SchedSpec
from repro.sched.workload import (
    DEFAULT_JOB_APPS,
    TRACE_PROFILES,
    Job,
    generate_trace,
    offered_load_summary,
)

__all__ = [
    "AdmissionQueue",
    "ClusterSim",
    "ClusterState",
    "DEFAULT_JOB_APPS",
    "Job",
    "JobRecord",
    "NodeView",
    "POLICIES",
    "PlacementPolicy",
    "SchedNode",
    "SchedResult",
    "SchedSpec",
    "TRACE_PROFILES",
    "estimate_job_power_w",
    "generate_trace",
    "make_policy",
    "offered_load_summary",
    "percentile",
    "run_sched",
]
