"""Declarative scheduler-run specifications.

A :class:`SchedSpec` is the scheduler analogue of
:class:`~repro.harness.spec.RunSpec`: the hashable, picklable
description of one scheduled cluster run, with a canonical-JSON SHA-256
content digest so results cache and fan out through the same
:class:`~repro.harness.executor.BatchExecutor` machinery.  Because the
simulation (trace generation included) is deterministic, a spec fully
determines its :class:`~repro.sched.result.SchedResult` — which is what
makes serial-vs-parallel bit-identity a checkable property here too.

The executor's hook is the :meth:`execute` method: specs that know how
to run themselves bypass ``run_measurement`` (see
:func:`repro.harness.executor.execute_spec`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigError
from repro.sched.policy import POLICIES
from repro.sched.workload import DEFAULT_JOB_APPS, TRACE_PROFILES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cosched.predictor import PredictorModel
    from repro.harness.telemetry import TelemetryBus
    from repro.sched.result import SchedResult

#: Bump when the sched spec schema (or ClusterSim semantics it maps
#: onto) changes incompatibly; folded into every digest.  Namespaced
#: distinctly from RunSpec's schema so the two digest spaces can never
#: collide even on identical payloads.
#:
#: sched-2: streaming traces draw each job's randomness interleaved
#: (gap, app, threads, scale per job) instead of all gaps up front, and
#: specs grew ``execution``/``retain_jobs``/``segment_jobs`` — results
#: under the old schema are not comparable, so the digest space moves.
SCHED_SPEC_SCHEMA = "sched-2"

#: Recognised execution modes: ``full`` drives the complete per-node
#: qthreads/RCR/clamp stack; ``analytic`` replaces each job's execution
#: with the calibrated roofline closed form (same trace, same policy and
#: admission machinery) so million-job traces run in seconds.
EXECUTION_MODES = ("full", "analytic")


@dataclass(frozen=True)
class SchedSpec:
    """One fully-specified scheduled cluster run."""

    profile: str = "poisson"
    policy: str = "fcfs"
    nodes: int = 4
    budget_w: float = 400.0
    jobs: int = 16
    rate_jobs_per_s: float = 1.0
    queue_depth: int = 8
    node_threads: int = 16
    scale: float = 0.5
    seed: int = 0
    #: Scheduler tick and engine drive-slice period.
    period_s: float = 0.25
    #: PowerCoordinator re-division period.
    coordinator_period_s: float = 1.0
    time_limit_s: float = 600.0
    apps: tuple[str, ...] = DEFAULT_JOB_APPS
    #: ``full`` (per-node microsimulation) or ``analytic`` (roofline
    #: closed form per job; the million-job mode).
    execution: str = "full"
    #: Keep every per-job :class:`~repro.sched.result.JobRecord` on the
    #: result.  ``False`` switches to pure streaming aggregation: exact
    #: sums plus quantile sketches, memory independent of job count.
    retain_jobs: bool = True
    #: Execute the trace in drained segments of this many jobs
    #: (checkpointable between segments); 0 = one uninterrupted segment.
    #: Segment boundaries change scheduling (nodes drain between
    #: segments), so this is part of the digest.
    segment_jobs: int = 0
    #: Predictor for the ``predicted`` policy.  ``None`` with
    #: ``policy='predicted'`` materialises the bundled default model so
    #: the digest always names the exact model used; any other policy
    #: must leave it unset.  Folded into the digest via the model's own
    #: content digest — only when present, so every pre-existing spec
    #: digest is unchanged.
    predictor: "Optional[PredictorModel]" = None
    #: Display-only heading; never part of digest, equality or hash.
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.profile not in TRACE_PROFILES:
            raise ConfigError(
                f"unknown trace profile {self.profile!r}; "
                f"one of {', '.join(sorted(TRACE_PROFILES))}"
            )
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown placement policy {self.policy!r}; "
                f"one of {', '.join(sorted(POLICIES))}"
            )
        if self.nodes < 1:
            raise ConfigError(f"nodes must be >= 1, got {self.nodes!r}")
        if self.budget_w <= 0:
            raise ConfigError(
                f"budget must be positive, got {self.budget_w!r}"
            )
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.queue_depth < 1:
            raise ConfigError(
                f"queue depth must be >= 1, got {self.queue_depth!r}"
            )
        if self.node_threads < 1:
            raise ConfigError(
                f"node threads must be >= 1, got {self.node_threads!r}"
            )
        if self.rate_jobs_per_s <= 0:
            raise ConfigError(
                f"arrival rate must be positive, got {self.rate_jobs_per_s!r}"
            )
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale!r}")
        if self.period_s <= 0 or self.coordinator_period_s <= 0:
            raise ConfigError("periods must be positive")
        if self.time_limit_s <= 0:
            raise ConfigError(
                f"time limit must be positive, got {self.time_limit_s!r}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ConfigError(
                f"unknown execution mode {self.execution!r}; "
                f"one of {', '.join(EXECUTION_MODES)}"
            )
        if self.segment_jobs < 0:
            raise ConfigError(
                f"segment_jobs must be >= 0, got {self.segment_jobs!r}"
            )
        if self.policy == "predicted":
            if self.predictor is None:
                from repro.cosched.predictor import default_model

                object.__setattr__(self, "predictor", default_model())
        elif self.predictor is not None:
            raise ConfigError(
                f"policy {self.policy!r} does not take a predictor model "
                f"(only 'predicted' does)"
            )
        # Normalise so list-vs-tuple cannot split the digest space.
        object.__setattr__(self, "apps", tuple(self.apps))
        if not self.apps:
            raise ConfigError("apps must not be empty")
        from repro.apps import APP_REGISTRY

        for app in self.apps:
            if app not in APP_REGISTRY:
                raise ConfigError(
                    f"unknown application {app!r}; "
                    f"known: {', '.join(sorted(APP_REGISTRY))}"
                )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def payload_dict(self) -> dict[str, Any]:
        """The digestable content: every field that affects the result."""
        payload: dict[str, Any] = {
            "schema": SCHED_SPEC_SCHEMA,
            "profile": self.profile,
            "policy": self.policy,
            "nodes": self.nodes,
            "budget_w": self.budget_w,
            "jobs": self.jobs,
            "rate_jobs_per_s": self.rate_jobs_per_s,
            "queue_depth": self.queue_depth,
            "node_threads": self.node_threads,
            "scale": self.scale,
            "seed": self.seed,
            "period_s": self.period_s,
            "coordinator_period_s": self.coordinator_period_s,
            "time_limit_s": self.time_limit_s,
            "apps": list(self.apps),
            "execution": self.execution,
            "retain_jobs": self.retain_jobs,
            "segment_jobs": self.segment_jobs,
        }
        # Conditional key: absent for every non-predicted spec, so the
        # whole pre-existing digest space is bit-stable.
        if self.predictor is not None:
            payload["predictor"] = self.predictor.digest
        return payload

    def canonical(self) -> str:
        return json.dumps(self.payload_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        """Stable SHA-256 content digest (hex)."""
        memo = self.__dict__.get("_digest")
        if memo is None:
            memo = hashlib.sha256(self.canonical().encode()).hexdigest()
            object.__setattr__(self, "_digest", memo)
        return memo

    # ------------------------------------------------------------------
    # execution / display
    # ------------------------------------------------------------------
    def execute(
        self,
        *,
        bus: "TelemetryBus | None" = None,
        checkpoint_dir=None,
        registry=None,
        tracer=None,
    ) -> "SchedResult":
        """Run this spec in-process (the executor's self-execution hook).

        ``checkpoint_dir`` is an execution detail (where checkpoints
        live on disk), never part of the digest: the result is
        bit-identical with or without it.  ``registry``/``tracer`` are
        optional :mod:`repro.obs` hooks with the same property.
        """
        from repro.sched.cluster import run_sched

        return run_sched(self, bus=bus, checkpoint_dir=checkpoint_dir,
                         registry=registry, tracer=tracer)

    @property
    def segment_count(self) -> int:
        """Number of drained execution segments this spec runs as."""
        if self.segment_jobs <= 0:
            return 1
        return -(-self.jobs // self.segment_jobs)

    def describe(self) -> str:
        if self.label:
            return self.label
        text = (
            f"sched {self.profile}/{self.policy} n{self.nodes} "
            f"{self.budget_w:.0f}W j{self.jobs}"
        )
        if self.execution != "full":
            text += f" [{self.execution}]"
        if self.seed:
            text += f" seed={self.seed}"
        return text

    def with_label(self, label: str) -> "SchedSpec":
        return dataclasses.replace(self, label=label)
