"""Deterministic quantile sketches for streaming SLO tails.

A million-job run cannot keep a per-job list just to report p99 wait, so
the streaming aggregation path summarizes each metric into a
:class:`QuantileSketch` — a DDSketch-style logarithmic-bucket histogram
with a *relative-error guarantee*:

    ``|quantile_estimate - true_quantile| <= rel_err * true_quantile``

for every quantile, as long as values fall in the sketch's dynamic range
(``MIN_TRACKABLE`` .. overflow, ~1e-9 .. 1e18 at the default 1%
resolution — twelve orders of magnitude beyond any simulated second or
joule).  Values at or below ``MIN_TRACKABLE`` land in an exact zero
bucket, so a wait of exactly 0 s is reported as exactly 0 s.

Everything is deterministic — bucket boundaries are pure functions of
``rel_err``, insertion order never matters (the sketch is a counter
map), and merging two sketches equals sketching the concatenated stream.
That makes sketches safe for the bit-identity contracts the scheduler
lives under: serial == parallel == resumed-from-checkpoint.

The quantile definition matches :func:`repro.sched.result.percentile`
(nearest-rank, no interpolation): the estimate for percentile *p* is the
representative value of the bucket containing the nearest-rank sample.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.errors import ConfigError

#: Default relative-error bound (1%): the pinned sketch-vs-exact
#: guarantee the validate invariant and tests enforce.
DEFAULT_REL_ERR = 0.01

#: Values at or below this are counted in the exact zero bucket.
MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """Mergeable log-bucket quantile sketch with bounded relative error.

    The bucket for value ``v`` is ``ceil(log_gamma(v))`` with
    ``gamma = (1 + rel_err) / (1 - rel_err)``; the representative value
    of bucket ``i`` is ``2 * gamma**i / (gamma + 1)`` (the harmonic
    midpoint), which is within ``rel_err`` of every value the bucket can
    hold.  State is a plain ``{bucket_index: count}`` dict plus exact
    count/sum/min/max accumulators, so the sketch pickles, merges and
    compares cheaply.
    """

    __slots__ = (
        "rel_err", "_log_gamma", "_gamma1", "zeros", "buckets",
        "count", "total", "min_value", "max_value",
    )

    def __init__(self, rel_err: float = DEFAULT_REL_ERR) -> None:
        if not 0.0 < rel_err < 0.5:
            raise ConfigError(
                f"rel_err must be in (0, 0.5), got {rel_err!r}"
            )
        self.rel_err = rel_err
        gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(gamma)
        self._gamma1 = gamma + 1.0
        self.zeros = 0
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one sample (negative values are a caller bug)."""
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ConfigError(
                f"sketch values must be finite and >= 0, got {value!r}"
            )
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value <= MIN_TRACKABLE:
            self.zeros += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    def quantile(self, pct: float) -> float:
        """Nearest-rank percentile estimate (0 for an empty sketch)."""
        if not 0.0 <= pct <= 100.0:
            raise ConfigError(f"pct must be in [0, 100], got {pct!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                gamma_i = math.exp(index * self._log_gamma)
                return 2.0 * gamma_i / self._gamma1
        # Float-accounting safety net: the ranked sample must be in the
        # last bucket.
        index = max(self.buckets)
        gamma_i = math.exp(index * self._log_gamma)
        return 2.0 * gamma_i / self._gamma1  # pragma: no cover

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (must share ``rel_err``)."""
        if other.rel_err != self.rel_err:
            raise ConfigError(
                f"cannot merge sketches with rel_err {self.rel_err!r} "
                f"and {other.rel_err!r}"
            )
        self.zeros += other.zeros
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        for value in (other.min_value,):
            if value is not None and (
                self.min_value is None or value < self.min_value
            ):
                self.min_value = value
        for value in (other.max_value,):
            if value is not None and (
                self.max_value is None or value > self.max_value
            ):
                self.max_value = value

    def copy(self) -> "QuantileSketch":
        dup = QuantileSketch(self.rel_err)
        dup.zeros = self.zeros
        dup.buckets = dict(self.buckets)
        dup.count = self.count
        dup.total = self.total
        dup.min_value = self.min_value
        dup.max_value = self.max_value
        return dup

    # ------------------------------------------------------------------
    # identity (pickling, equality, digestable canonical form)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "rel_err": self.rel_err,
            "zeros": self.zeros,
            "buckets": self.buckets,
            "count": self.count,
            "total": self.total,
            "min_value": self.min_value,
            "max_value": self.max_value,
        }

    def __setstate__(self, state) -> None:
        self.__init__(state["rel_err"])
        self.zeros = state["zeros"]
        self.buckets = dict(state["buckets"])
        self.count = state["count"]
        self.total = state["total"]
        self.min_value = state["min_value"]
        self.max_value = state["max_value"]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __hash__(self) -> int:  # state is mutable; hash by identity
        return id(self)

    def canonical(self) -> str:
        """Deterministic text form (folded into result digests)."""
        parts = [
            f"rel_err={self.rel_err!r}",
            f"zeros={self.zeros}",
            f"count={self.count}",
            f"total={self.total!r}",
            f"min={self.min_value!r}",
            f"max={self.max_value!r}",
            "buckets=" + ",".join(
                f"{i}:{self.buckets[i]}" for i in sorted(self.buckets)
            ),
        ]
        return ";".join(parts)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(rel_err={self.rel_err}, count={self.count}, "
            f"buckets={len(self.buckets)})"
        )
