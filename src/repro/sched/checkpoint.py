"""Checkpointed segmented execution of scheduled runs.

A million-job run that dies at job 900,000 must not restart from zero.
This module executes a spec as a sequence of *drained segments* of
``spec.segment_jobs`` jobs each: a segment runs its slice of the lazy
trace to completion (queue empty, nodes idle), then the compact carry
state — ``(next job index, simulation clock, streaming accumulator,
retained records)`` — is pickled to an atomic checkpoint file.  A killed
process re-enters at the last checkpoint: the trace iterator re-seeks by
redrawing (``start=k`` on :func:`~repro.sched.workload.iter_trace`),
a fresh engine starts at the carried clock, and the accumulator resumes
exactly where it stopped.

Why this is *bit-identical* rather than merely close: segment
boundaries are part of the spec (``segment_jobs`` is digested), so the
uninterrupted execution of a segmented spec runs the very same
per-segment code — fresh engine and node stacks at the same clock, same
carried accumulator — as the resumed one.  Floats pickle losslessly,
dict insertion orders survive pickling, and every draw comes from the
deterministic trace stream; the resume-identity invariant in
:mod:`repro.validate.scale` pins ``result_digest()`` equality, and the
kill-and-resume test exercises it across a real process boundary.

Checkpoint files are written with ``pickle → tmp file → os.replace``,
so a crash mid-write leaves the previous checkpoint intact (the same
atomicity discipline the experiment service journal uses).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError
from repro.harness.telemetry import TelemetryBus
from repro.sched.aggregate import SchedAccumulator
from repro.sched.result import JobRecord, SchedResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.spec import SchedSpec

#: Bump when the carry-state layout changes; a mismatched checkpoint is
#: discarded (the run restarts) rather than misread.
CHECKPOINT_SCHEMA = "sched-ckpt-1"


@dataclass
class SchedCheckpoint:
    """The complete between-segments carry state (picklable)."""

    spec_digest: str
    next_start: int = 0
    clock_s: float = 0.0
    accumulator: SchedAccumulator = field(default_factory=SchedAccumulator)
    records: list[JobRecord] = field(default_factory=list)
    schema: str = CHECKPOINT_SCHEMA


def checkpoint_path(directory: Path, spec: "SchedSpec") -> Path:
    """Where a spec's checkpoint lives (content-addressed by digest)."""
    return Path(directory) / f"{spec.digest[:16]}.ckpt"


def save_checkpoint(directory: Path, spec: "SchedSpec",
                    state: SchedCheckpoint) -> Path:
    """Atomically persist ``state`` (tmp + rename; crash-safe)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, spec)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(
    directory: Path, spec: "SchedSpec"
) -> Optional[SchedCheckpoint]:
    """The spec's resumable carry state, or None to start fresh.

    A checkpoint for a different spec digest or schema version is
    ignored (never deleted here — ``clear_checkpoint`` does that once
    the run completes).  A torn/corrupt file is treated as absent: the
    atomic-rename discipline means it can only be a leftover tmp
    artifact or foreign file, and restarting is always correct.
    """
    path = checkpoint_path(Path(directory), spec)
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except FileNotFoundError:
        return None
    except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
        return None
    if not isinstance(state, SchedCheckpoint):
        return None
    if state.schema != CHECKPOINT_SCHEMA or state.spec_digest != spec.digest:
        return None
    return state


def clear_checkpoint(directory: Path, spec: "SchedSpec") -> None:
    """Remove the spec's checkpoint (idempotent)."""
    try:
        checkpoint_path(Path(directory), spec).unlink()
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# the segmented runner
# ----------------------------------------------------------------------
def _run_one_segment(
    spec: "SchedSpec",
    bus: TelemetryBus,
    state: SchedCheckpoint,
    limit: int,
) -> float:
    """Execute one drained segment against the carried state in place."""
    if spec.execution == "analytic":
        from repro.sched.analytic import AnalyticSim

        sim = AnalyticSim(
            spec,
            bus=bus,
            start=state.next_start,
            limit=limit,
            clock_s=state.clock_s,
            accumulator=state.accumulator,
            records=state.records,
        )
        return sim.run_segment()
    from repro.sched.cluster import ClusterSim
    from repro.sim.engine import Engine

    sim = ClusterSim(
        spec,
        bus=bus,
        engine=Engine(start_time=state.clock_s),
        start=state.next_start,
        limit=limit,
        accumulator=state.accumulator,
        records=state.records,
    )
    return sim.run_segment()


def run_segmented(
    spec: "SchedSpec",
    *,
    bus: Optional[TelemetryBus] = None,
    checkpoint_dir: Optional[Path] = None,
) -> SchedResult:
    """Run a ``segment_jobs`` spec segment by segment, checkpointing.

    With ``checkpoint_dir`` set, the carry state is persisted after
    every segment and a pre-existing checkpoint is resumed from; without
    it the segmentation still happens (the digest demands it) but
    nothing touches disk.
    """
    from repro.sched.cluster import build_result, emit_finished
    from repro.sched.roofline import roofline_envelope

    if spec.segment_jobs <= 0:
        raise ConfigError(
            "run_segmented requires a spec with segment_jobs > 0; "
            f"got {spec.segment_jobs!r}"
        )
    bus = bus if bus is not None else TelemetryBus()
    t0 = time.perf_counter()
    state: Optional[SchedCheckpoint] = None
    if checkpoint_dir is not None:
        state = load_checkpoint(checkpoint_dir, spec)
    if state is None:
        state = SchedCheckpoint(spec_digest=spec.digest)

    while state.next_start < spec.jobs:
        limit = min(spec.segment_jobs, spec.jobs - state.next_start)
        state.clock_s = _run_one_segment(spec, bus, state, limit)
        state.next_start += limit
        if checkpoint_dir is not None and state.next_start < spec.jobs:
            save_checkpoint(checkpoint_dir, spec, state)

    if spec.execution == "analytic":
        state.accumulator.add_violations(
            roofline_envelope(spec, state.accumulator.snapshot())
        )
    result = build_result(
        spec,
        state.accumulator,
        state.records,
        wall_s=time.perf_counter() - t0,
    )
    if checkpoint_dir is not None:
        clear_checkpoint(checkpoint_dir, spec)
    emit_finished(bus, spec, result)
    return result
