"""Analytic (roofline closed-form) execution of scheduled traces.

``execution="analytic"`` keeps the *scheduling* machinery real — the
same lazy trace, admission queue and placement policies as the full
simulation — but replaces each job's execution with the calibrated
roofline closed form from :mod:`repro.sched.roofline`: service time and
energy are two multiplies off a cached per-configuration point, so a
job costs a couple of heap operations instead of a full qthreads
runtime, RCR daemon and power-clamp microsimulation.  That is the
difference between ~2 ms/job and ~2 µs/job — i.e. between "a
million-job trace is a week" and "a million-job trace is a minute".

What the analytic mode deliberately does not model: the power clamp
(jobs run unthrottled at their roofline wattage), the coordinator's
budget re-division (``coordinator_rounds`` is 0), and RCR measurement
noise.  Peak cluster power is still tracked (busy nodes at job wattage,
idle nodes at the coordinator's power floor) so budget-sizing sweeps
remain meaningful, and the roofline envelope oracle audits every run's
aggregates at the end.

The event loop is a plain two-stream merge — pending arrivals (pulled
one at a time from :func:`~repro.sched.workload.iter_trace`, so memory
stays O(nodes + queue)) against a finish-time heap — with a fixed
deterministic tie rule (finishes before arrivals at equal times).
Segmentation carries ``(clock, accumulator, records)`` exactly like the
full path, so checkpoint/resume identity holds here too.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import TYPE_CHECKING, Optional

from repro.cluster.coordinator import NODE_FLOOR_W
from repro.errors import SimulationError
from repro.harness.telemetry import TelemetryBus
from repro.sched.aggregate import SchedAccumulator
from repro.sched.policy import ClusterState, NodeView, make_policy
from repro.sched.queue import AdmissionQueue
from repro.sched.result import JobRecord, SchedResult
from repro.sched.roofline import job_cost, roofline_envelope
from repro.sched.workload import iter_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.spec import SchedSpec


class AnalyticSim:
    """One analytic segment: merged arrival/finish event loop."""

    def __init__(
        self,
        spec: "SchedSpec",
        *,
        bus: Optional[TelemetryBus] = None,
        start: int = 0,
        limit: Optional[int] = None,
        clock_s: float = 0.0,
        accumulator: Optional[SchedAccumulator] = None,
        records: Optional[list[JobRecord]] = None,
    ) -> None:
        self.spec = spec
        self.bus = bus if bus is not None else TelemetryBus()
        if limit is None:
            limit = spec.jobs - start
        self._source = itertools.islice(
            iter_trace(
                spec.profile,
                jobs=spec.jobs,
                rate_jobs_per_s=spec.rate_jobs_per_s,
                seed=spec.seed,
                apps=spec.apps,
                scale=spec.scale,
                start=start,
            ),
            limit,
        )
        self.accumulator = (
            accumulator if accumulator is not None else SchedAccumulator()
        )
        self.records: list[JobRecord] = records if records is not None else []
        self.policy = make_policy(spec.policy, model=spec.predictor)
        self.queue = AdmissionQueue(spec.queue_depth)
        self.now = clock_s
        self._t0_sim = clock_s
        self._names = [f"node{i}" for i in range(spec.nodes)]
        self._busy = [False] * spec.nodes
        self._watts = [0.0] * spec.nodes
        self._index = {name: i for i, name in enumerate(self._names)}
        for name in self._names:
            self.accumulator.note_node(name)
        #: (finish_time, seq, node_idx, record) — seq breaks float ties
        #: deterministically in placement order.
        self._heap: list[tuple[float, int, int, JobRecord]] = []
        self._seq = 0
        self._events = 0
        self._peak_power_w = 0.0
        self._next_job = None

    # ------------------------------------------------------------------
    def run_segment(self) -> float:
        """Drain this segment's jobs; returns the drain-time clock."""
        spec = self.spec
        self._next_job = next(self._source, None)
        while self._next_job is not None or self._heap:
            if self.now > self._t0_sim + spec.time_limit_s:
                raise SimulationError(
                    f"analytic run exceeded {spec.time_limit_s} s with "
                    f"{len(self.queue)} queued and "
                    f"{sum(self._busy)} running jobs"
                )
            arrival_t = (
                None
                if self._next_job is None
                else max(self._next_job.submit_s, self._t0_sim)
            )
            # Finishes before arrivals at equal times: the node frees
            # first, so the arriving job can be placed immediately —
            # fixed rule, applied identically on every (re)run.
            if self._heap and (
                arrival_t is None or self._heap[0][0] <= arrival_t
            ):
                self._fire_finish()
            else:
                self._fire_arrival(arrival_t)
            self._dispatch()
        self.accumulator.add_segment(
            peak_power_w=self._peak_power_w,
            peak_queue_depth=self.queue.peak_depth,
            coordinator_rounds=0,
            engine_events=self._events,
        )
        return self.now

    # ------------------------------------------------------------------
    def _fire_finish(self) -> None:
        finish_t, _seq, idx, record = heapq.heappop(self._heap)
        self.now = finish_t
        self._events += 1
        self._busy[idx] = False
        self._watts[idx] = 0.0
        self.accumulator.add_job(record)
        if self.spec.retain_jobs:
            self.records.append(record)

    def _fire_arrival(self, arrival_t: float) -> None:
        job = self._next_job
        self._next_job = next(self._source, None)
        self.now = max(self.now, arrival_t)
        self._events += 1
        if not self.queue.offer(job):
            self.accumulator.add_rejection(job.index)

    def _dispatch(self) -> None:
        while len(self.queue) > 0:
            views = [
                NodeView(
                    name=name,
                    busy=self._busy[i],
                    budget_w=self.spec.budget_w / self.spec.nodes,
                    measured_power_w=self._watts[i],
                    clamp_pressure=0.0,
                )
                for i, name in enumerate(self._names)
            ]
            total = sum(self._watts)
            state = ClusterState(
                time_s=self.now,
                global_budget_w=self.spec.budget_w,
                total_power_w=total,
            )
            pick = self.policy.select(self.queue.jobs, views, state)
            if pick is None:
                return
            position, node_name = pick
            idx = self._index.get(node_name)
            if idx is None or self._busy[idx]:
                raise SimulationError(
                    f"policy {self.spec.policy!r} chose "
                    f"{'unknown' if idx is None else 'busy'} node "
                    f"{node_name!r}"
                )
            job = self.queue.take(position)
            cost = job_cost(job)
            record = JobRecord(
                index=job.index,
                app=job.app,
                threads=job.threads,
                node=node_name,
                submit_s=job.submit_s,
                start_s=self.now,
                finish_s=self.now + cost.time_s,
                time_s=cost.time_s,
                energy_j=cost.energy_j,
                avg_watts=cost.avg_watts,
            )
            self._busy[idx] = True
            self._watts[idx] = cost.avg_watts
            heapq.heappush(
                self._heap, (record.finish_s, self._seq, idx, record)
            )
            self._seq += 1
            power = sum(self._watts) + NODE_FLOOR_W * (
                self.spec.nodes - sum(self._busy)
            )
            if power > self._peak_power_w:
                self._peak_power_w = power


def run_analytic(
    spec: "SchedSpec",
    *,
    bus: Optional[TelemetryBus] = None,
    checkpoint_dir=None,
) -> SchedResult:
    """Run a spec analytically (segmented when ``segment_jobs`` is set)."""
    from repro.sched.checkpoint import run_segmented
    from repro.sched.cluster import build_result, emit_finished

    if spec.segment_jobs:
        return run_segmented(spec, bus=bus, checkpoint_dir=checkpoint_dir)
    bus = bus if bus is not None else TelemetryBus()
    t0 = time.perf_counter()
    sim = AnalyticSim(spec, bus=bus)
    sim.run_segment()
    sim.accumulator.add_violations(
        roofline_envelope(spec, sim.accumulator.snapshot())
    )
    result = build_result(
        spec, sim.accumulator, sim.records, wall_s=time.perf_counter() - t0
    )
    emit_finished(bus, spec, result)
    return result
