"""Open-loop workload traces: deterministic, seeded job arrival streams.

A trace is a tuple of :class:`Job` records — *who* arrives (an app from
the registry, a thread demand, a work scale) and *when* (an arrival
timestamp) — generated before the simulation starts and replayed
open-loop: arrivals do not react to queueing delay or rejections, which
is what makes saturation and shedding observable at all (a closed loop
would self-throttle).

Three stochastic arrival profiles plus a deterministic control:

* ``steady``   — fixed interarrival gap (1/rate), the control profile;
* ``poisson``  — exponential interarrival times at a constant rate;
* ``bursty``   — on/off modulated Poisson: short bursts of tightly
  packed arrivals separated by compensating lulls (same long-run rate);
* ``diurnal``  — inhomogeneous Poisson with a sinusoidal rate, sampled
  by Lewis–Shedler thinning (a day-curve compressed onto the trace).

Determinism: every draw comes from one named
:class:`~repro.sim.rng.RngStreams` stream keyed by ``(seed, profile)``,
so the same ``(profile, jobs, rate, seed, apps)`` tuple always yields a
bit-identical trace regardless of what else consumed randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.sim.rng import RngStreams

#: Default job mix: fast registry apps with distinct power/scaling
#: shapes, so placement decisions actually face heterogeneous demand.
DEFAULT_JOB_APPS: tuple[str, ...] = (
    "mergesort",
    "nqueens",
    "reduction",
    "fibonacci",
    "bots-sort",
)

#: Thread demands jobs draw from (uniformly).
THREAD_CHOICES: tuple[int, ...] = (4, 8, 16)

#: Burst shape for the ``bursty`` profile: arrivals inside a burst come
#: this many times faster than the long-run rate; lulls compensate.
_BURST_SPEEDUP = 6.0
_BURST_MIN_JOBS = 2
_BURST_MAX_JOBS = 6

#: Rate swing of the ``diurnal`` profile: lambda(t) in
#: ``rate * (1 +/- _DIURNAL_AMPLITUDE)``.
_DIURNAL_AMPLITUDE = 0.8


@dataclass(frozen=True)
class Job:
    """One trace entry: a unit of work and its arrival time."""

    index: int
    submit_s: float
    app: str
    threads: int
    scale: float
    compiler: str = "gcc"
    optlevel: str = "O2"

    def describe(self) -> str:
        return f"j{self.index}:{self.app} t{self.threads} @{self.submit_s:.2f}s"


#: Profile name -> one-line description (the registry the CLI exposes).
TRACE_PROFILES: dict[str, str] = {
    "steady": "fixed interarrival gap (deterministic control)",
    "poisson": "constant-rate Poisson arrivals",
    "bursty": "on/off modulated Poisson: packed bursts, compensating lulls",
    "diurnal": "sinusoidal-rate Poisson (day curve, by thinning)",
}


def _interarrivals(profile: str, jobs: int, rate: float, rng) -> list[float]:
    """The gap sequence (seconds) between consecutive arrivals."""
    if profile == "steady":
        return [1.0 / rate] * jobs
    if profile == "poisson":
        return [float(g) for g in rng.exponential(1.0 / rate, size=jobs)]
    if profile == "bursty":
        gaps: list[float] = []
        while len(gaps) < jobs:
            burst = int(rng.integers(_BURST_MIN_JOBS, _BURST_MAX_JOBS + 1))
            for _ in range(burst):
                gaps.append(float(rng.exponential(1.0 / (rate * _BURST_SPEEDUP))))
            # The lull repays the burst's rate debt so the long-run rate
            # stays ~`rate` and profiles compare at equal offered load.
            gaps.append(float(rng.exponential(burst / rate)))
        return gaps[:jobs]
    if profile == "diurnal":
        # Lewis-Shedler thinning against the peak rate; one full "day"
        # spans the nominal trace length so the sweep sees both slopes.
        day_s = max(jobs / rate, 1e-9)
        peak = rate * (1.0 + _DIURNAL_AMPLITUDE)
        gaps = []
        t = 0.0
        last = 0.0
        while len(gaps) < jobs:
            t += float(rng.exponential(1.0 / peak))
            lam = rate * (
                1.0 + _DIURNAL_AMPLITUDE * math.sin(2.0 * math.pi * t / day_s)
            )
            if float(rng.uniform()) * peak <= lam:
                gaps.append(t - last)
                last = t
        return gaps
    raise ConfigError(
        f"unknown trace profile {profile!r}; one of {', '.join(sorted(TRACE_PROFILES))}"
    )


def generate_trace(
    profile: str,
    *,
    jobs: int,
    rate_jobs_per_s: float = 1.0,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_JOB_APPS,
    scale: float = 0.5,
    compiler: str = "gcc",
    optlevel: str = "O2",
) -> tuple[Job, ...]:
    """Generate a deterministic open-loop arrival trace.

    ``scale`` is the nominal per-job work scale; each job perturbs it by
    a seeded ±25% draw so service times are heterogeneous but exactly
    reproducible.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs!r}")
    if rate_jobs_per_s <= 0:
        raise ConfigError(f"rate must be positive, got {rate_jobs_per_s!r}")
    if not apps:
        raise ConfigError("the job app pool must not be empty")
    if profile not in TRACE_PROFILES:
        raise ConfigError(
            f"unknown trace profile {profile!r}; "
            f"one of {', '.join(sorted(TRACE_PROFILES))}"
        )
    rng = RngStreams(seed).stream(f"sched-trace/{profile}")
    gaps = _interarrivals(profile, jobs, rate_jobs_per_s, rng)
    trace: list[Job] = []
    t = 0.0
    for i, gap in enumerate(gaps):
        t += gap
        app = apps[int(rng.integers(0, len(apps)))]
        threads = THREAD_CHOICES[int(rng.integers(0, len(THREAD_CHOICES)))]
        job_scale = scale * float(rng.uniform(0.75, 1.25))
        trace.append(
            Job(
                index=i,
                submit_s=t,
                app=app,
                threads=threads,
                scale=job_scale,
                compiler=compiler,
                optlevel=optlevel,
            )
        )
    return tuple(trace)


def offered_load_summary(trace: Sequence[Job]) -> str:
    """One-line trace description (for result headers and logs)."""
    if not trace:
        return "empty trace"
    span = trace[-1].submit_s - trace[0].submit_s
    rate = (len(trace) - 1) / span if span > 0 else float("inf")
    apps = sorted({job.app for job in trace})
    return (
        f"{len(trace)} jobs over {trace[-1].submit_s:.1f} s "
        f"(~{rate:.2f} jobs/s) from {len(apps)} apps"
    )
