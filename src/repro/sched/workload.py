"""Open-loop workload traces: deterministic, seeded job arrival streams.

A trace is a sequence of :class:`Job` records — *who* arrives (an app
from the registry, a thread demand, a work scale) and *when* (an arrival
timestamp) — replayed open-loop: arrivals do not react to queueing delay
or rejections, which is what makes saturation and shedding observable at
all (a closed loop would self-throttle).

Traces are *streamed*: :func:`iter_trace` is a lazy generator that draws
each job's randomness (interarrival gap, app, threads, scale) as the job
is yielded, so a million-job trace costs a handful of live objects, not
a million.  :func:`generate_trace` is simply the materialized form —
``tuple(iter_trace(...))`` — and the two are bit-identical by
construction (pinned by test).  ``start`` lets a resumed run re-enter
the stream at job *k* by re-drawing (and discarding) the first *k* jobs'
randomness: the generator is deterministic, so skipping is exact.

Three stochastic arrival profiles plus a deterministic control:

* ``steady``   — fixed interarrival gap (1/rate), the control profile;
* ``poisson``  — exponential interarrival times at a constant rate;
* ``bursty``   — on/off modulated Poisson: short bursts of tightly
  packed arrivals separated by compensating lulls (same long-run rate);
* ``diurnal``  — inhomogeneous Poisson with a sinusoidal rate, sampled
  by Lewis–Shedler thinning (a day-curve compressed onto the trace).

Determinism: every draw comes from one named
:class:`~repro.sim.rng.RngStreams` stream keyed by ``(seed, profile)``,
so the same ``(profile, jobs, rate, seed, apps)`` tuple always yields a
bit-identical stream regardless of what else consumed randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigError
from repro.sim.rng import RngStreams

#: Default job mix: fast registry apps with distinct power/scaling
#: shapes, so placement decisions actually face heterogeneous demand.
DEFAULT_JOB_APPS: tuple[str, ...] = (
    "mergesort",
    "nqueens",
    "reduction",
    "fibonacci",
    "bots-sort",
)

#: Thread demands jobs draw from (uniformly).
THREAD_CHOICES: tuple[int, ...] = (4, 8, 16)

#: Burst shape for the ``bursty`` profile: arrivals inside a burst come
#: this many times faster than the long-run rate; lulls compensate.
_BURST_SPEEDUP = 6.0
_BURST_MIN_JOBS = 2
_BURST_MAX_JOBS = 6

#: Rate swing of the ``diurnal`` profile: lambda(t) in
#: ``rate * (1 +/- _DIURNAL_AMPLITUDE)``.
_DIURNAL_AMPLITUDE = 0.8


@dataclass(frozen=True)
class Job:
    """One trace entry: a unit of work and its arrival time."""

    index: int
    submit_s: float
    app: str
    threads: int
    scale: float
    compiler: str = "gcc"
    optlevel: str = "O2"

    def describe(self) -> str:
        return f"j{self.index}:{self.app} t{self.threads} @{self.submit_s:.2f}s"


#: Profile name -> one-line description (the registry the CLI exposes).
TRACE_PROFILES: dict[str, str] = {
    "steady": "fixed interarrival gap (deterministic control)",
    "poisson": "constant-rate Poisson arrivals",
    "bursty": "on/off modulated Poisson: packed bursts, compensating lulls",
    "diurnal": "sinusoidal-rate Poisson (day curve, by thinning)",
}


def _iter_gaps(profile: str, jobs: int, rate: float, rng) -> Iterator[float]:
    """Lazy gap sequence (seconds) between consecutive arrivals.

    Each profile is a stateful generator that draws exactly the
    randomness for the next gap when asked for it — no gap list is ever
    materialized, which is what keeps :func:`iter_trace` O(1) in memory.
    """
    if profile == "steady":
        gap = 1.0 / rate
        for _ in range(jobs):
            yield gap
        return
    if profile == "poisson":
        mean = 1.0 / rate
        for _ in range(jobs):
            yield float(rng.exponential(mean))
        return
    if profile == "bursty":
        yielded = 0
        while yielded < jobs:
            burst = int(rng.integers(_BURST_MIN_JOBS, _BURST_MAX_JOBS + 1))
            for _ in range(burst):
                if yielded == jobs:
                    return
                yield float(rng.exponential(1.0 / (rate * _BURST_SPEEDUP)))
                yielded += 1
            if yielded == jobs:
                return
            # The lull repays the burst's rate debt so the long-run rate
            # stays ~`rate` and profiles compare at equal offered load.
            yield float(rng.exponential(burst / rate))
            yielded += 1
        return
    if profile == "diurnal":
        # Lewis-Shedler thinning against the peak rate; one full "day"
        # spans the nominal trace length so the sweep sees both slopes.
        day_s = max(jobs / rate, 1e-9)
        peak = rate * (1.0 + _DIURNAL_AMPLITUDE)
        t = 0.0
        last = 0.0
        yielded = 0
        while yielded < jobs:
            t += float(rng.exponential(1.0 / peak))
            lam = rate * (
                1.0 + _DIURNAL_AMPLITUDE * math.sin(2.0 * math.pi * t / day_s)
            )
            if float(rng.uniform()) * peak <= lam:
                yield t - last
                last = t
                yielded += 1
        return
    raise ConfigError(
        f"unknown trace profile {profile!r}; one of {', '.join(sorted(TRACE_PROFILES))}"
    )


def _validate_trace_args(
    profile: str, jobs: int, rate_jobs_per_s: float, apps: Sequence[str]
) -> None:
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs!r}")
    if rate_jobs_per_s <= 0:
        raise ConfigError(f"rate must be positive, got {rate_jobs_per_s!r}")
    if not apps:
        raise ConfigError("the job app pool must not be empty")
    if profile not in TRACE_PROFILES:
        raise ConfigError(
            f"unknown trace profile {profile!r}; "
            f"one of {', '.join(sorted(TRACE_PROFILES))}"
        )


def iter_trace(
    profile: str,
    *,
    jobs: int,
    rate_jobs_per_s: float = 1.0,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_JOB_APPS,
    scale: float = 0.5,
    compiler: str = "gcc",
    optlevel: str = "O2",
    start: int = 0,
) -> Iterator[Job]:
    """Yield the deterministic open-loop arrival trace lazily.

    ``scale`` is the nominal per-job work scale; each job perturbs it by
    a seeded ±25% draw so service times are heterogeneous but exactly
    reproducible.  All randomness for job *i* (gap, app, threads, scale)
    is drawn when job *i* is produced, in that fixed order, so the
    stream position after *i* jobs is a pure function of ``(profile,
    seed, i)`` — which is what makes ``start`` an exact re-entry point:
    the first ``start`` jobs are re-drawn and discarded, never stored.
    """
    _validate_trace_args(profile, jobs, rate_jobs_per_s, apps)
    if not 0 <= start <= jobs:
        raise ConfigError(
            f"start must be in [0, jobs={jobs}], got {start!r}"
        )
    apps = tuple(apps)
    rng = RngStreams(seed).stream(f"sched-trace/{profile}")
    gaps = _iter_gaps(profile, jobs, rate_jobs_per_s, rng)
    t = 0.0
    for i in range(jobs):
        t += next(gaps)
        app = apps[int(rng.integers(0, len(apps)))]
        threads = THREAD_CHOICES[int(rng.integers(0, len(THREAD_CHOICES)))]
        job_scale = scale * float(rng.uniform(0.75, 1.25))
        if i < start:
            continue
        yield Job(
            index=i,
            submit_s=t,
            app=app,
            threads=threads,
            scale=job_scale,
            compiler=compiler,
            optlevel=optlevel,
        )


def generate_trace(
    profile: str,
    *,
    jobs: int,
    rate_jobs_per_s: float = 1.0,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_JOB_APPS,
    scale: float = 0.5,
    compiler: str = "gcc",
    optlevel: str = "O2",
) -> tuple[Job, ...]:
    """The materialized trace: ``tuple(iter_trace(...))``, bit-identical."""
    return tuple(
        iter_trace(
            profile,
            jobs=jobs,
            rate_jobs_per_s=rate_jobs_per_s,
            seed=seed,
            apps=apps,
            scale=scale,
            compiler=compiler,
            optlevel=optlevel,
        )
    )


def offered_load_summary(trace: Sequence[Job]) -> str:
    """One-line trace description (for result headers and logs)."""
    if not trace:
        return "empty trace"
    span = trace[-1].submit_s - trace[0].submit_s
    rate = (len(trace) - 1) / span if span > 0 else float("inf")
    apps = sorted({job.app for job in trace})
    return (
        f"{len(trace)} jobs over {trace[-1].submit_s:.1f} s "
        f"(~{rate:.2f} jobs/s) from {len(apps)} apps"
    )
