"""Typed telemetry events for the cluster scheduler.

These ride the existing :class:`~repro.harness.telemetry.TelemetryBus`:
the bus is type-agnostic, :class:`~repro.harness.telemetry.JsonlSink`
serialises any dataclass event, and the harness's ProgressSink silently
ignores types it does not know — so scheduler events need no changes to
the harness layer.  :class:`SchedProgressSink` renders them for the
``repro sched`` CLI.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO, Optional


@dataclass(frozen=True)
class JobSubmitted:
    """A trace job arrived at the cluster."""

    index: int
    app: str
    threads: int
    time_s: float


@dataclass(frozen=True)
class JobRejected:
    """Admission control shed an arriving job (queue full)."""

    index: int
    app: str
    queue_depth: int
    time_s: float


@dataclass(frozen=True)
class JobPlaced:
    """The placement policy dispatched a queued job onto a node."""

    index: int
    app: str
    node: str
    policy: str
    wait_s: float
    time_s: float


@dataclass(frozen=True)
class JobFinished:
    """A placed job completed; measured figures are for its region."""

    index: int
    app: str
    node: str
    service_s: float
    energy_j: float
    watts: float
    time_s: float


@dataclass(frozen=True)
class SchedFinished:
    """End-of-run scheduler summary."""

    policy: str
    profile: str
    submitted: int
    completed: int
    rejected: int
    makespan_s: float
    peak_power_w: float
    budget_w: float


class SchedProgressSink:
    """Human-readable per-job narration (stderr by default)."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def _line(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def handle(self, event) -> None:
        if isinstance(event, JobSubmitted):
            self._line(
                f"t={event.time_s:7.2f}s  submit j{event.index:<3} "
                f"{event.app} (t{event.threads})"
            )
        elif isinstance(event, JobRejected):
            self._line(
                f"t={event.time_s:7.2f}s  REJECT j{event.index:<3} "
                f"{event.app} (queue full at {event.queue_depth})"
            )
        elif isinstance(event, JobPlaced):
            self._line(
                f"t={event.time_s:7.2f}s  place  j{event.index:<3} "
                f"{event.app} -> {event.node} "
                f"[{event.policy}] after {event.wait_s:.2f}s queued"
            )
        elif isinstance(event, JobFinished):
            self._line(
                f"t={event.time_s:7.2f}s  done   j{event.index:<3} "
                f"{event.app} on {event.node}: {event.service_s:.2f} s, "
                f"{event.energy_j:.1f} J, {event.watts:.1f} W"
            )
        elif isinstance(event, SchedFinished):
            self._line(
                f"sched [{event.policy}/{event.profile}]: "
                f"{event.completed}/{event.submitted} jobs "
                f"({event.rejected} rejected), makespan "
                f"{event.makespan_s:.1f} s, peak {event.peak_power_w:.1f} W "
                f"of {event.budget_w:.1f} W budget"
            )
        # Harness events (SweepStarted etc.) fall through silently, the
        # same contract ProgressSink applies to ours.
