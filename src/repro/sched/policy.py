"""Pluggable placement policies for the energy-aware cluster scheduler.

A policy sees an immutable snapshot of the cluster — the queued jobs and
a :class:`NodeView` per node (busy/idle, current power budget, measured
power, clamp pressure) — and answers one question: *which queued job goes
on which idle node right now, if any?*  Returning ``None`` means "hold":
leave the queue as it is until the next scheduling tick.

The four shipped policies span the design space the paper's conclusion
gestures at (per-node parallelism control plus energy monitoring feeding
a cross-node tool):

* ``fcfs``      — first come, first served onto the first idle node;
  the baseline every scheduling study needs.
* ``bestfit``   — FCFS job order, but picks the idle node whose *power
  headroom* (budget − measured) most tightly fits the job's estimated
  draw: packs power like best-fit bin packing packs bytes.
* ``edp``       — greedy on estimated energy-delay product: may reorder
  the queue to run the job with the lowest estimated EDP first
  (shortest-job-first's energy-aware cousin).
* ``waterfill`` — power-aware water-filling: defers placement while the
  cluster's measured power plus the job's marginal estimate would exceed
  the global budget, and prefers the node with the *lowest* clamp
  pressure, so jobs land where the coordinator's re-division has spare
  watts rather than where the clamp is already shedding threads.

All heuristic estimates are deliberately crude (watts proportional to
requested threads): the scheduler's job is to make *placement* decisions
from *measured* feedback, not to be an oracle — the clamp and
coordinator correct whatever the estimate gets wrong.

The fifth policy breaks that rule on purpose:

* ``predicted`` — interference-aware placement driven by a
  :class:`~repro.cosched.predictor.PredictorModel` fitted from co-run
  profiles (:mod:`repro.experiments.coschedsweep`).  It orders the queue
  by *calibrated* predicted EDP (measured solo costs, not the crude
  closed form), holds against the global budget using predicted watts,
  and steers sensitive jobs away from clamp-pressured nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol, Sequence

from repro.config import PAPER_MACHINE
from repro.errors import ConfigError
from repro.sched.workload import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cosched.predictor import PredictorModel

#: Estimated marginal draw per active thread, W.  Calibrated loosely
#: against the single-node stack (a 16-thread hot loop draws ~100 W over
#: idle); precision is unnecessary — see the module docstring.
_WATTS_PER_THREAD = 6.5

#: One idle node's draw (uncore plus parked cores, both sockets) — what
#: the ``predicted`` policy subtracts to turn its *absolute* calibrated
#: watts into the *marginal* draw the budget arithmetic expects.
_NODE_IDLE_W = PAPER_MACHINE.sockets * (
    PAPER_MACHINE.power.uncore_w
    + PAPER_MACHINE.cores_per_socket * PAPER_MACHINE.power.core_idle_w
)


def estimate_job_power_w(threads: int) -> float:
    """Estimated marginal node power while a job runs, W (above idle)."""
    return threads * _WATTS_PER_THREAD


@dataclass(frozen=True)
class NodeView:
    """Immutable per-node snapshot handed to policies."""

    name: str
    busy: bool
    budget_w: float
    measured_power_w: float
    #: Fraction of threads the node's clamp is shedding (0.0 = passive).
    clamp_pressure: float

    @property
    def headroom_w(self) -> float:
        """Power the node could draw before hitting its budget."""
        return max(0.0, self.budget_w - self.measured_power_w)


@dataclass(frozen=True)
class ClusterState:
    """Cluster-wide snapshot for budget-aware policies."""

    time_s: float
    global_budget_w: float
    total_power_w: float

    @property
    def global_headroom_w(self) -> float:
        return max(0.0, self.global_budget_w - self.total_power_w)


class PlacementPolicy(Protocol):
    """The policy contract: pick ``(queue position, node name)`` or hold.

    ``queue`` is in FCFS order; policies that honour arrival order must
    return position 0.  Only idle nodes may be chosen.  Implementations
    must be pure functions of their arguments — the scheduler snapshots
    state each tick precisely so policies cannot reach into live objects
    and break determinism.
    """

    def select(
        self,
        queue: Sequence[Job],
        nodes: Sequence[NodeView],
        state: ClusterState,
    ) -> Optional[tuple[int, str]]: ...


def _idle(nodes: Sequence[NodeView]) -> list[NodeView]:
    return [n for n in nodes if not n.busy]


class FcfsFirstFit:
    """Head-of-queue job onto the first idle node, no power awareness."""

    name = "fcfs"

    def select(self, queue, nodes, state):
        idle = _idle(nodes)
        if not queue or not idle:
            return None
        return 0, idle[0].name


class BestFitPower:
    """Head-of-queue job onto the idle node with the tightest headroom fit.

    Among idle nodes whose headroom covers the job's estimated draw, pick
    the smallest such headroom (classic best-fit, applied to watts); if
    none covers it, fall back to the largest headroom — the clamp will
    shed threads rather than let the node overshoot, so placement is
    always safe, just slower.
    """

    name = "bestfit"

    def select(self, queue, nodes, state):
        idle = _idle(nodes)
        if not queue or not idle:
            return None
        need = estimate_job_power_w(queue[0].threads)
        fitting = [n for n in idle if n.headroom_w >= need]
        if fitting:
            chosen = min(fitting, key=lambda n: (n.headroom_w, n.name))
        else:
            chosen = max(idle, key=lambda n: (n.headroom_w, n.name))
        return 0, chosen.name


class EdpGreedy:
    """Run the queued job with the lowest estimated energy-delay product.

    Service time is estimated as work/threads (perfect scaling — crude on
    purpose), energy as estimated power × time, so
    EDP ∝ scale² · _WATTS_PER_THREAD / threads: small jobs with high
    thread counts jump the queue.  The chosen job goes to the idle node
    with the most headroom, since the job picked for speed deserves the
    watts to achieve it.
    """

    name = "edp"

    def select(self, queue, nodes, state):
        idle = _idle(nodes)
        if not queue or not idle:
            return None

        def edp(job: Job) -> tuple[float, int]:
            est_time = job.scale / max(1, job.threads)
            est_energy = estimate_job_power_w(job.threads) * est_time
            return est_energy * est_time, job.index

        pos = min(range(len(queue)), key=lambda i: edp(queue[i]))
        chosen = max(idle, key=lambda n: (n.headroom_w, n.name))
        return pos, chosen.name


class WaterfillPowerAware:
    """Power-aware water-filling against the *global* budget.

    Defers the head-of-queue job while the cluster's measured power plus
    the job's estimated marginal draw would exceed the global budget —
    unless every node is idle, in which case it places anyway: an empty
    cluster must never deadlock on an estimate that exceeds achievable
    headroom (the clamp enforces the real bound).  When it does place, it
    prefers the idle node with the lowest clamp pressure (ties: most
    headroom), i.e. where the coordinator's re-division left spare watts.
    """

    name = "waterfill"

    def select(self, queue, nodes, state):
        idle = _idle(nodes)
        if not queue or not idle:
            return None
        need = estimate_job_power_w(queue[0].threads)
        any_busy = any(n.busy for n in nodes)
        if any_busy and state.total_power_w + need > state.global_budget_w:
            return None  # hold until running jobs free up watts
        chosen = min(
            idle, key=lambda n: (n.clamp_pressure, -n.headroom_w, n.name)
        )
        return 0, chosen.name


class PredictedPlacement:
    """Interference-aware placement from fitted co-run profiles.

    Job order: lowest *predicted* EDP first, where time and power come
    from the predictor's calibrated solo entries and the time is
    inflated by the job's fitted contention sensitivity times the
    cluster's current power-pressure (how hard the coordinator's clamp
    is squeezing).  Budget hold mirrors ``waterfill`` but with the
    predicted watts instead of the threads heuristic.  Node choice
    weights each node's clamp pressure by the job's sensitivity — a
    contention-immune job can soak a pressured node, a sensitive one is
    steered to headroom.
    """

    name = "predicted"

    def __init__(self, model: "Optional[PredictorModel]" = None) -> None:
        self._model = model

    @property
    def model(self) -> "PredictorModel":
        if self._model is None:
            from repro.cosched.predictor import default_model

            self._model = default_model()
        return self._model

    def _pressure(self, state: ClusterState) -> float:
        """Cluster power-pressure proxy in [0, ~1]: budget utilisation."""
        if state.global_budget_w <= 0:
            return 0.0
        return min(1.0, state.total_power_w / state.global_budget_w)

    def select(self, queue, nodes, state):
        idle = _idle(nodes)
        if not queue or not idle:
            return None
        model = self.model
        pressure = self._pressure(state)

        def edp(job: Job) -> tuple[float, int]:
            return (
                model.predict_edp(job.app, job.threads, job.scale,
                                  pressure=pressure),
                job.index,
            )

        pos = min(range(len(queue)), key=lambda i: edp(queue[i]))
        job = queue[pos]
        # Calibrated watts are absolute node draw; the cluster's measured
        # total already contains every node's idle floor, so hold against
        # the *marginal* draw this job adds.
        need = max(
            0.0, model.predict_watts(job.app, job.threads) - _NODE_IDLE_W
        )
        any_busy = any(n.busy for n in nodes)
        if any_busy and state.total_power_w + need > state.global_budget_w:
            return None  # hold until running jobs free up watts
        sensitivity = model.sensitivity_of(job.app, job.threads)
        chosen = min(
            idle,
            key=lambda n: (
                n.clamp_pressure * sensitivity,
                -n.headroom_w,
                n.name,
            ),
        )
        return pos, chosen.name


#: Policy name -> factory (the registry the CLI and spec resolve from).
POLICIES: dict[str, Callable[..., PlacementPolicy]] = {
    FcfsFirstFit.name: FcfsFirstFit,
    BestFitPower.name: BestFitPower,
    EdpGreedy.name: EdpGreedy,
    WaterfillPowerAware.name: WaterfillPowerAware,
    PredictedPlacement.name: PredictedPlacement,
}


def make_policy(
    name: str, *, model: "Optional[PredictorModel]" = None
) -> PlacementPolicy:
    """Instantiate a registered placement policy by name.

    ``model`` customises the ``predicted`` policy's predictor (it is an
    error for any other policy); omitted, ``predicted`` falls back to
    the bundled default model.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown placement policy {name!r}; "
            f"one of {', '.join(sorted(POLICIES))}"
        ) from None
    if name == PredictedPlacement.name:
        return factory(model)
    if model is not None:
        raise ConfigError(
            f"policy {name!r} does not take a predictor model "
            f"(only 'predicted' does)"
        )
    return factory()
