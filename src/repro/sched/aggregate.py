"""Streaming aggregation of scheduled-run outcomes.

The old pipeline carried every :class:`~repro.sched.result.JobRecord`
to the end of the run and derived metrics from the full tuple; at a
million jobs that tuple *is* the memory problem.  This module is the
replacement spine: a mutable :class:`SchedAccumulator` that folds each
finished job into O(1) state — exact sums, counts, min/max, per-node
tallies — plus a :class:`~repro.sched.sketch.QuantileSketch` per tail
metric (wait, slowdown, energy/job), and snapshots into the frozen,
picklable :class:`SchedStats` that rides inside
:class:`~repro.sched.result.SchedResult`.

The accumulator is also the unit of checkpointing: it pickles
losslessly (floats round-trip exactly), and folding jobs ``0..k`` then
resuming from a restored copy is bit-identical to folding ``0..n``
straight through — the resume-identity invariant in
:mod:`repro.validate.scale` pins exactly that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sched.sketch import DEFAULT_REL_ERR, QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.result import JobRecord
    from repro.validate.violations import Violation

#: How many rejected trace indices / budget violations the accumulator
#: retains verbatim; beyond this only the exact counts survive (the
#: retained prefix keeps small-run reports and tests fully informative).
MAX_RETAINED_REJECTIONS = 1024
MAX_RETAINED_VIOLATIONS = 64


@dataclass(frozen=True)
class SchedStats:
    """Frozen snapshot of a run's streaming aggregates (picklable)."""

    completed: int
    rejected: int
    energy_sum_j: float
    wait_sum_s: float
    slowdown_sum: float
    service_sum_s: float
    makespan_s: float
    peak_power_w: float
    peak_queue_depth: int
    coordinator_rounds: int
    engine_events: int
    violation_count: int
    jobs_per_node: dict[str, int]
    wait_sketch: QuantileSketch
    slowdown_sketch: QuantileSketch
    energy_sketch: QuantileSketch
    segments: int = 1

    @property
    def submitted(self) -> int:
        return self.completed + self.rejected

    def canonical(self) -> str:
        """Deterministic text form (folded into the result digest)."""
        nodes = ",".join(
            f"{name}:{count}"
            for name, count in sorted(self.jobs_per_node.items())
        )
        return "|".join([
            f"completed={self.completed}",
            f"rejected={self.rejected}",
            f"energy={self.energy_sum_j!r}",
            f"wait={self.wait_sum_s!r}",
            f"slowdown={self.slowdown_sum!r}",
            f"service={self.service_sum_s!r}",
            f"makespan={self.makespan_s!r}",
            f"peak_power={self.peak_power_w!r}",
            f"peak_queue={self.peak_queue_depth}",
            f"rounds={self.coordinator_rounds}",
            f"events={self.engine_events}",
            f"violations={self.violation_count}",
            f"segments={self.segments}",
            f"nodes=[{nodes}]",
            f"wait<{self.wait_sketch.canonical()}>",
            f"slowdown<{self.slowdown_sketch.canonical()}>",
            f"energy<{self.energy_sketch.canonical()}>",
        ])

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()


@dataclass
class SchedAccumulator:
    """Mutable streaming aggregator — one per run, survives checkpoints."""

    rel_err: float = DEFAULT_REL_ERR
    completed: int = 0
    rejected_count: int = 0
    energy_sum_j: float = 0.0
    wait_sum_s: float = 0.0
    slowdown_sum: float = 0.0
    service_sum_s: float = 0.0
    makespan_s: float = 0.0
    peak_power_w: float = 0.0
    peak_queue_depth: int = 0
    coordinator_rounds: int = 0
    engine_events: int = 0
    violation_count: int = 0
    segments: int = 0
    jobs_per_node: dict[str, int] = field(default_factory=dict)
    rejected_indices: list[int] = field(default_factory=list)
    violations: "list[Violation]" = field(default_factory=list)
    wait_sketch: QuantileSketch = None  # type: ignore[assignment]
    slowdown_sketch: QuantileSketch = None  # type: ignore[assignment]
    energy_sketch: QuantileSketch = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.wait_sketch is None:
            self.wait_sketch = QuantileSketch(self.rel_err)
        if self.slowdown_sketch is None:
            self.slowdown_sketch = QuantileSketch(self.rel_err)
        if self.energy_sketch is None:
            self.energy_sketch = QuantileSketch(self.rel_err)

    # ------------------------------------------------------------------
    def note_node(self, name: str) -> None:
        """Register a node so idle nodes still appear with count 0."""
        self.jobs_per_node.setdefault(name, 0)

    def add_job(self, record: "JobRecord") -> None:
        self.completed += 1
        self.energy_sum_j += record.energy_j
        self.wait_sum_s += record.wait_s
        self.slowdown_sum += record.slowdown
        self.service_sum_s += record.time_s
        if record.finish_s > self.makespan_s:
            self.makespan_s = record.finish_s
        self.jobs_per_node[record.node] = (
            self.jobs_per_node.get(record.node, 0) + 1
        )
        self.wait_sketch.add(record.wait_s)
        self.slowdown_sketch.add(record.slowdown)
        self.energy_sketch.add(record.energy_j)

    def add_rejection(self, index: int) -> None:
        self.rejected_count += 1
        if len(self.rejected_indices) < MAX_RETAINED_REJECTIONS:
            self.rejected_indices.append(index)

    def add_violations(self, violations) -> None:
        for violation in violations:
            self.violation_count += 1
            if len(self.violations) < MAX_RETAINED_VIOLATIONS:
                self.violations.append(violation)

    def add_segment(
        self,
        *,
        peak_power_w: float,
        peak_queue_depth: int,
        coordinator_rounds: int,
        engine_events: int,
    ) -> None:
        """Fold one execution segment's run-level aggregates."""
        self.segments += 1
        self.peak_power_w = max(self.peak_power_w, peak_power_w)
        self.peak_queue_depth = max(self.peak_queue_depth, peak_queue_depth)
        self.coordinator_rounds += coordinator_rounds
        self.engine_events += engine_events

    # ------------------------------------------------------------------
    def snapshot(self) -> SchedStats:
        """A frozen copy of the current aggregates."""
        return SchedStats(
            completed=self.completed,
            rejected=self.rejected_count,
            energy_sum_j=self.energy_sum_j,
            wait_sum_s=self.wait_sum_s,
            slowdown_sum=self.slowdown_sum,
            service_sum_s=self.service_sum_s,
            makespan_s=self.makespan_s,
            peak_power_w=self.peak_power_w,
            peak_queue_depth=self.peak_queue_depth,
            coordinator_rounds=self.coordinator_rounds,
            engine_events=self.engine_events,
            violation_count=self.violation_count,
            jobs_per_node=dict(self.jobs_per_node),
            wait_sketch=self.wait_sketch.copy(),
            slowdown_sketch=self.slowdown_sketch.copy(),
            energy_sketch=self.energy_sketch.copy(),
            segments=max(self.segments, 1),
        )
