"""Roofline closed-form job cost model and per-run oracle.

Afzal et al. (PAPERS.md) validate cluster-scale scheduling with an
*analytic* roofline model of each application — time and power as closed
forms of the workload's compute/memory balance — instead of simulating
every job.  This module is that idea applied to our calibrated
profiles: :mod:`repro.calibration.fit` already expresses the
simulator's fluid model in closed form (``predicted_time`` plus the
piecewise-constant power integral behind ``fit_power_scale``), so a
job's service time and energy can be computed without running the
qthreads machinery at all.

Two consumers:

* :mod:`repro.sched.analytic` — the ``execution="analytic"`` path uses
  these closed forms *as* the job execution model, which is what makes
  million-job traces tractable (a handful of float ops per job);
* :func:`roofline_envelope` — the cheap per-run oracle: given a run's
  streaming :class:`~repro.sched.aggregate.SchedStats`, check that the
  aggregate service time and energy land inside the envelope the model
  predicts for the spec's app mix.  At scales where replaying the run
  under the full invariant battery is too slow, this is the tripwire
  that still catches a broken aggregation spine.

Everything is deterministic and linear in the job's work scale: both
``predicted_time`` and the energy integral scale linearly with
``work_s``, so one cached unit-scale point per (app, compiler, optlevel,
threads) prices any job with two multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable

from repro.calibration.fit import (
    _interval_power_terms,
    aggregate_rate,
    socket_loads,
    stretch,
)
from repro.apps.registry import app_profile
from repro.config import PAPER_MACHINE, MachineConfig
from repro.validate.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.aggregate import SchedStats
    from repro.sched.spec import SchedSpec
    from repro.sched.workload import Job

#: Envelope slack for the full-simulation cross-check: the microsim
#: adds task-granularity quantisation, clamp throttling and daemon
#: overhead the closed form does not model, so per-run aggregates must
#: land within this factor of the roofline prediction, not on it.
ENVELOPE_FACTOR = 3.0


@dataclass(frozen=True)
class RooflinePoint:
    """Closed-form cost of one job configuration at unit work scale."""

    app: str
    threads: int
    time_s: float
    energy_j: float

    @property
    def avg_watts(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0


@lru_cache(maxsize=None)
def roofline_point(
    app: str,
    threads: int,
    compiler: str = "gcc",
    optlevel: str = "O2",
    machine: MachineConfig = PAPER_MACHINE,
) -> RooflinePoint:
    """Unit-scale (``scale=1``) time and energy for one configuration.

    Time mirrors :func:`repro.calibration.fit.predicted_time`; energy
    integrates the same piecewise-constant power schedule the power fit
    uses, with the profile's fitted ``power_scale`` (and per-phase power
    shapes) plugged in.  Both are linear in work, so callers scale the
    point by a job's ``scale`` instead of recomputing.
    """
    profile = app_profile(app, compiler, optlevel, machine=machine)
    shape = profile.shape
    mlp = machine.memory.mlp_per_core
    p_eff = shape.effective_threads(threads)

    # Serial section: one active core on socket 0.
    t_serial = profile.serial_work_s * stretch(
        shape.mu_serial, mlp * shape.mu_serial, shape.alpha, machine
    )
    loads_serial = [1] + [0] * (machine.sockets - 1)
    fixed, scale_w = _interval_power_terms(
        loads_serial, shape.mu_serial, shape.alpha, machine
    )
    energy = (fixed + profile.power_scale * scale_w) * t_serial
    total_t = t_serial

    # Parallel phases under the contention model.
    loads = socket_loads(p_eff, machine)
    for i, (weight, mu) in enumerate(shape.phases):
        t_phase = profile.parallel_work_s * weight / aggregate_rate(
            mu, shape.alpha, p_eff, machine, coherence=shape.coherence
        )
        fixed, scale_w = _interval_power_terms(
            loads, mu, shape.alpha, machine, coherence=shape.coherence
        )
        energy += (fixed + profile.phase_power_scale(i) * scale_w) * t_phase
        total_t += t_phase

    return RooflinePoint(
        app=app, threads=threads, time_s=total_t, energy_j=energy
    )


def job_cost(job: "Job", machine: MachineConfig = PAPER_MACHINE) -> RooflinePoint:
    """Roofline time/energy for one trace job (scaled by ``job.scale``)."""
    unit = roofline_point(
        job.app, job.threads, job.compiler, job.optlevel, machine=machine
    )
    return RooflinePoint(
        app=job.app,
        threads=job.threads,
        time_s=unit.time_s * job.scale,
        energy_j=unit.energy_j * job.scale,
    )


# ----------------------------------------------------------------------
# the per-run oracle
# ----------------------------------------------------------------------
def _spec_bounds(
    spec: "SchedSpec", machine: MachineConfig = PAPER_MACHINE
) -> tuple[float, float, float, float]:
    """(min_t, max_t, min_e, max_e) per-job bounds for a spec's job mix.

    Jobs draw app from ``spec.apps``, threads from the workload thread
    pool, and scale from ``spec.scale * U(0.75, 1.25)``; the bounds are
    the extreme corners of that grid under the closed form.
    """
    from repro.sched.workload import THREAD_CHOICES

    points = [
        roofline_point(app, threads, machine=machine)
        for app in spec.apps
        for threads in THREAD_CHOICES
    ]
    lo_scale = spec.scale * 0.75
    hi_scale = spec.scale * 1.25
    min_t = min(p.time_s for p in points) * lo_scale
    max_t = max(p.time_s for p in points) * hi_scale
    min_e = min(p.energy_j for p in points) * lo_scale
    max_e = max(p.energy_j for p in points) * hi_scale
    return min_t, max_t, min_e, max_e


def roofline_envelope(
    spec: "SchedSpec",
    stats: "SchedStats",
    *,
    factor: float = ENVELOPE_FACTOR,
    machine: MachineConfig = PAPER_MACHINE,
) -> list[Violation]:
    """Check a run's aggregates against the roofline envelope.

    The mean per-job service time and energy must land inside the
    closed-form [min, max] corners of the spec's job mix, slackened by
    ``factor`` on both sides (the full simulation layers queueing-free
    effects the model does not price: clamp throttling, daemon overhead,
    task quantisation).  O(apps × thread choices) — cheap enough to run
    after every million-job sweep.
    """
    if stats.completed == 0:
        return []
    min_t, max_t, min_e, max_e = _spec_bounds(spec, machine=machine)
    violations: list[Violation] = []
    mean_t = stats.service_sum_s / stats.completed
    mean_e = stats.energy_sum_j / stats.completed
    if not (min_t / factor <= mean_t <= max_t * factor):
        violations.append(Violation(
            invariant="roofline-service-time",
            category="model",
            message=(
                f"mean job service time {mean_t:.4f} s outside roofline "
                f"envelope [{min_t / factor:.4f}, {max_t * factor:.4f}] s "
                f"over {stats.completed} jobs"
            ),
        ))
    if not (min_e / factor <= mean_e <= max_e * factor):
        violations.append(Violation(
            invariant="roofline-energy",
            category="model",
            message=(
                f"mean job energy {mean_e:.2f} J outside roofline "
                f"envelope [{min_e / factor:.2f}, {max_e * factor:.2f}] J "
                f"over {stats.completed} jobs"
            ),
        ))
    return violations


def check_roofline(
    spec: "SchedSpec", stats: "SchedStats"
) -> Iterable[Violation]:
    """Alias used by the validate layer (mirrors check_cluster_budgets)."""
    return roofline_envelope(spec, stats)
