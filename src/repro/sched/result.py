"""Picklable scheduler results: per-job SLO records and the run summary.

:class:`JobRecord` is one job's lifecycle reduced to scalars; the
:class:`SchedResult` aggregates them into the service-level metrics a
scheduling study reports — wait time, slowdown, energy per job,
rejection count, and p50/p95/p99 tails — plus the power-budget evidence
(peak cluster power, coordinator rounds, any cluster-budget violations).

Two aggregation paths coexist:

* **retained jobs** (the default for small runs): ``jobs`` carries every
  :class:`JobRecord` and percentiles are *exact* — computed from one
  cached sort per metric, never re-sorted per call;
* **streamed** (``retain_jobs=False`` on the spec): ``jobs`` is empty
  and every metric comes from :class:`~repro.sched.aggregate.SchedStats`
  — exact sums/counts plus :class:`~repro.sched.sketch.QuantileSketch`
  tails with a pinned relative-error bound.  This is what lets a
  million-job run produce a result whose size is independent of job
  count.

Everything is frozen scalars/tuples so results cross process boundaries
and live in the harness result cache exactly like
:class:`~repro.harness.record.MeasurementRecord` does.  ``wall_s`` (host
time) is excluded from equality for the same reason as there: two runs
of one spec are bit-identical *simulations* regardless of host speed —
which is precisely what the determinism tests assert.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.measure.report import MeasurementRow, format_measurement_table
from repro.sched.aggregate import SchedStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.spec import SchedSpec
    from repro.validate.violations import Violation

#: ``format()`` prints at most this many per-job rows; a retained run
#: larger than this shows the head plus an ellipsis line.
MAX_FORMAT_ROWS = 64


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _ranked(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank lookup into an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class JobRecord:
    """One job's full lifecycle, reduced to picklable scalars."""

    index: int
    app: str
    threads: int
    node: str
    submit_s: float
    start_s: float
    finish_s: float
    #: Paper-style measured region figures for this job alone.
    time_s: float
    energy_j: float
    avg_watts: float

    @property
    def wait_s(self) -> float:
        """Time spent queued before the job started running."""
        return self.start_s - self.submit_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.submit_s

    @property
    def slowdown(self) -> float:
        """Turnaround over service time (1.0 = no queueing penalty)."""
        if self.time_s <= 0:
            return 1.0
        return self.turnaround_s / self.time_s


@dataclass(frozen=True)
class SchedResult:
    """Outcome of one scheduled cluster run (picklable, cacheable)."""

    spec: "SchedSpec"
    jobs: tuple[JobRecord, ...]
    rejected: tuple[int, ...]  # trace indices of shed jobs (bounded sample)
    makespan_s: float
    peak_power_w: float
    #: Per-node count of jobs each node ran (includes idle nodes as 0).
    jobs_per_node: dict[str, int]
    coordinator_rounds: int
    engine_events: int
    peak_queue_depth: int
    #: Cluster-budget invariant violations observed during the run
    #: (bounded sample; ``stats.violation_count`` has the exact total).
    budget_violations: tuple["Violation", ...] = ()
    #: Streaming aggregates — always present on newly produced results;
    #: the single source of truth when ``jobs`` is not retained.
    stats: Optional[SchedStats] = None
    #: Host wall-clock seconds spent executing (never part of equality).
    wall_s: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------ metrics
    @property
    def completed(self) -> int:
        if self.jobs:
            return len(self.jobs)
        return self.stats.completed if self.stats is not None else 0

    @property
    def rejected_count(self) -> int:
        """Exact number of shed jobs (``rejected`` may be a sample)."""
        if self.stats is not None:
            return self.stats.rejected
        return len(self.rejected)

    @property
    def submitted(self) -> int:
        return self.completed + self.rejected_count

    @property
    def total_energy_j(self) -> float:
        if self.jobs:
            return sum(j.energy_j for j in self.jobs)
        return self.stats.energy_sum_j if self.stats is not None else 0.0

    @property
    def energy_per_job_j(self) -> float:
        done = self.completed
        return self.total_energy_j / done if done else 0.0

    @property
    def mean_wait_s(self) -> float:
        if self.jobs:
            return sum(j.wait_s for j in self.jobs) / len(self.jobs)
        if self.stats is not None and self.stats.completed:
            return self.stats.wait_sum_s / self.stats.completed
        return 0.0

    @property
    def mean_slowdown(self) -> float:
        if self.jobs:
            return sum(j.slowdown for j in self.jobs) / len(self.jobs)
        if self.stats is not None and self.stats.completed:
            return self.stats.slowdown_sum / self.stats.completed
        return 0.0

    @property
    def mean_edp_js(self) -> float:
        """Mean per-job energy-delay product, J·s (delay = turnaround).

        Using *turnaround* rather than bare service time makes queue
        ordering part of the metric — a policy that runs cheap short
        jobs first lowers it — which is what the policy tournament
        ranks.  Exact over retained jobs; the streamed fallback is the
        product-of-means approximation (documented as such, since the
        exact per-job product is not recoverable from separate sums).
        """
        if self.jobs:
            return sum(
                j.energy_j * j.turnaround_s for j in self.jobs
            ) / len(self.jobs)
        if self.stats is not None and self.stats.completed:
            n = self.stats.completed
            mean_energy = self.stats.energy_sum_j / n
            mean_turnaround = (
                self.stats.wait_sum_s + self.stats.service_sum_s
            ) / n
            return mean_energy * mean_turnaround
        return 0.0

    # ----------------------------------------------------- tail metrics
    def _sorted_metric(self, metric: str) -> Sequence[float]:
        """One cached sort per metric per result (jobs retained only)."""
        cache = self.__dict__.get("_sorted_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_sorted_cache", cache)
        ordered = cache.get(metric)
        if ordered is None:
            ordered = sorted(getattr(j, metric) for j in self.jobs)
            cache[metric] = ordered
        return ordered

    def _tail(self, metric: str, sketch_name: str, pct: float) -> float:
        if self.jobs:
            return _ranked(self._sorted_metric(metric), pct)
        if self.stats is not None:
            return getattr(self.stats, sketch_name).quantile(pct)
        return 0.0

    def wait_percentile_s(self, pct: float) -> float:
        return self._tail("wait_s", "wait_sketch", pct)

    def slowdown_percentile(self, pct: float) -> float:
        return self._tail("slowdown", "slowdown_sketch", pct)

    def energy_percentile_j(self, pct: float) -> float:
        return self._tail("energy_j", "energy_sketch", pct)

    # ------------------------------------------- harness-compatible view
    #: The executor's telemetry reads time_s/energy_j/watts off whatever
    #: record a spec produces; for a scheduled run the natural analogues
    #: are makespan, total trace energy, and the peak coordinated power.
    @property
    def time_s(self) -> float:
        return self.makespan_s

    @property
    def energy_j(self) -> float:
        return self.total_energy_j

    @property
    def watts(self) -> float:
        return self.peak_power_w

    # ------------------------------------------------------------ identity
    def result_digest(self) -> str:
        """Stable SHA-256 over the result's deterministic content.

        This is the resume-identity witness: an uninterrupted streamed
        run and a kill-and-resume of the same spec must produce equal
        digests.  ``wall_s`` is excluded (host time); everything else —
        including sketch states and retained job scalars — is folded in
        with exact float ``repr``.
        """
        h = hashlib.sha256()
        h.update(self.spec.digest.encode())
        if self.stats is not None:
            h.update(self.stats.canonical().encode())
        for job in self.jobs:
            h.update((
                f"{job.index}|{job.app}|{job.threads}|{job.node}|"
                f"{job.submit_s!r}|{job.start_s!r}|{job.finish_s!r}|"
                f"{job.time_s!r}|{job.energy_j!r}|{job.avg_watts!r}\n"
            ).encode())
        h.update(f"rejected={','.join(map(str, self.rejected))}".encode())
        h.update(
            f"|makespan={self.makespan_s!r}|peak={self.peak_power_w!r}"
            f"|rounds={self.coordinator_rounds}|events={self.engine_events}"
            f"|queue={self.peak_queue_depth}"
            f"|violations={len(self.budget_violations)}".encode()
        )
        return h.hexdigest()

    # ------------------------------------------------------------ display
    def format(self) -> str:
        shown = self.jobs[:MAX_FORMAT_ROWS]
        rows = [
            MeasurementRow(
                label=f"{job.node}:j{job.index}:{job.app}",
                time_s=job.time_s,
                energy_j=job.energy_j,
                avg_watts=job.avg_watts,
            )
            for job in shown
        ]
        lines = []
        if rows:
            lines.append(format_measurement_table(
                rows, title="Scheduled cluster run (per-job time/energy/power)"
            ))
            if len(self.jobs) > len(shown):
                lines.append(
                    f"  ... {len(self.jobs) - len(shown)} more jobs "
                    "(full records retained)"
                )
        else:
            lines.append(
                "Scheduled cluster run (streamed: per-job records not "
                "retained; tails from quantile sketches)"
            )
        placement = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.jobs_per_node.items())
        )
        lines.extend([
            f"jobs: {self.completed} completed, {self.rejected_count} "
            f"rejected of {self.submitted} submitted (peak queue depth "
            f"{self.peak_queue_depth})",
            f"placement: {placement}",
            f"makespan: {self.makespan_s:.2f} s; "
            f"peak cluster power {self.peak_power_w:.1f} W "
            f"(budget {self.spec.budget_w:.1f} W)",
            f"energy: {self.total_energy_j:.1f} J total, "
            f"{self.energy_per_job_j:.1f} J/job",
            f"wait: mean {self.mean_wait_s:.2f} s, "
            f"p50 {self.wait_percentile_s(50):.2f} / "
            f"p95 {self.wait_percentile_s(95):.2f} / "
            f"p99 {self.wait_percentile_s(99):.2f} s",
            f"slowdown: mean {self.mean_slowdown:.2f}, "
            f"p95 {self.slowdown_percentile(95):.2f}",
        ])
        if self.stats is not None and self.stats.segments > 1:
            lines.append(
                f"executed in {self.stats.segments} checkpointed segments"
            )
        if self.budget_violations:
            lines.append(
                f"cluster-budget violations: {len(self.budget_violations)}"
            )
            lines.extend(f"  {v}" for v in self.budget_violations[:5])
        return "\n".join(lines)

    def summary_line(self) -> str:
        return (
            f"{self.spec.describe()}: {self.completed}/{self.submitted} jobs, "
            f"makespan {self.makespan_s:.1f} s, "
            f"{self.energy_per_job_j:.0f} J/job, "
            f"p95 wait {self.wait_percentile_s(95):.2f} s, "
            f"peak {self.peak_power_w:.0f} W"
        )
