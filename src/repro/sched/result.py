"""Picklable scheduler results: per-job SLO records and the run summary.

:class:`JobRecord` is one job's lifecycle reduced to scalars; the
:class:`SchedResult` aggregates them into the service-level metrics a
scheduling study reports — wait time, slowdown, energy per job,
rejection count, and p50/p95/p99 tails — plus the power-budget evidence
(peak cluster power, coordinator rounds, any cluster-budget violations).

Everything is frozen scalars/tuples so results cross process boundaries
and live in the harness result cache exactly like
:class:`~repro.harness.record.MeasurementRecord` does.  ``wall_s`` (host
time) is excluded from equality for the same reason as there: two runs
of one spec are bit-identical *simulations* regardless of host speed —
which is precisely what the determinism tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.measure.report import MeasurementRow, format_measurement_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.spec import SchedSpec
    from repro.validate.violations import Violation


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class JobRecord:
    """One job's full lifecycle, reduced to picklable scalars."""

    index: int
    app: str
    threads: int
    node: str
    submit_s: float
    start_s: float
    finish_s: float
    #: Paper-style measured region figures for this job alone.
    time_s: float
    energy_j: float
    avg_watts: float

    @property
    def wait_s(self) -> float:
        """Time spent queued before the job started running."""
        return self.start_s - self.submit_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.submit_s

    @property
    def slowdown(self) -> float:
        """Turnaround over service time (1.0 = no queueing penalty)."""
        if self.time_s <= 0:
            return 1.0
        return self.turnaround_s / self.time_s


@dataclass(frozen=True)
class SchedResult:
    """Outcome of one scheduled cluster run (picklable, cacheable)."""

    spec: "SchedSpec"
    jobs: tuple[JobRecord, ...]
    rejected: tuple[int, ...]  # trace indices of shed jobs
    makespan_s: float
    peak_power_w: float
    #: Per-node count of jobs each node ran (includes idle nodes as 0).
    jobs_per_node: dict[str, int]
    coordinator_rounds: int
    engine_events: int
    peak_queue_depth: int
    #: Cluster-budget invariant violations observed during the run
    #: (empty on a healthy run; surfaced through ``repro validate``).
    budget_violations: tuple["Violation", ...] = ()
    #: Host wall-clock seconds spent executing (never part of equality).
    wall_s: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------ metrics
    @property
    def completed(self) -> int:
        return len(self.jobs)

    @property
    def submitted(self) -> int:
        return len(self.jobs) + len(self.rejected)

    @property
    def total_energy_j(self) -> float:
        return sum(j.energy_j for j in self.jobs)

    @property
    def energy_per_job_j(self) -> float:
        return self.total_energy_j / len(self.jobs) if self.jobs else 0.0

    @property
    def mean_wait_s(self) -> float:
        waits = [j.wait_s for j in self.jobs]
        return sum(waits) / len(waits) if waits else 0.0

    @property
    def mean_slowdown(self) -> float:
        slows = [j.slowdown for j in self.jobs]
        return sum(slows) / len(slows) if slows else 0.0

    def wait_percentile_s(self, pct: float) -> float:
        return percentile([j.wait_s for j in self.jobs], pct)

    def slowdown_percentile(self, pct: float) -> float:
        return percentile([j.slowdown for j in self.jobs], pct)

    # ------------------------------------------- harness-compatible view
    #: The executor's telemetry reads time_s/energy_j/watts off whatever
    #: record a spec produces; for a scheduled run the natural analogues
    #: are makespan, total trace energy, and the peak coordinated power.
    @property
    def time_s(self) -> float:
        return self.makespan_s

    @property
    def energy_j(self) -> float:
        return self.total_energy_j

    @property
    def watts(self) -> float:
        return self.peak_power_w

    # ------------------------------------------------------------ display
    def format(self) -> str:
        rows = [
            MeasurementRow(
                label=f"{job.node}:j{job.index}:{job.app}",
                time_s=job.time_s,
                energy_j=job.energy_j,
                avg_watts=job.avg_watts,
            )
            for job in self.jobs
        ]
        table = format_measurement_table(
            rows, title="Scheduled cluster run (per-job time/energy/power)"
        )
        placement = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.jobs_per_node.items())
        )
        lines = [
            table,
            f"jobs: {self.completed} completed, {len(self.rejected)} rejected "
            f"of {self.submitted} submitted (peak queue depth "
            f"{self.peak_queue_depth})",
            f"placement: {placement}",
            f"makespan: {self.makespan_s:.2f} s; "
            f"peak cluster power {self.peak_power_w:.1f} W "
            f"(budget {self.spec.budget_w:.1f} W)",
            f"energy: {self.total_energy_j:.1f} J total, "
            f"{self.energy_per_job_j:.1f} J/job",
            f"wait: mean {self.mean_wait_s:.2f} s, "
            f"p50 {self.wait_percentile_s(50):.2f} / "
            f"p95 {self.wait_percentile_s(95):.2f} / "
            f"p99 {self.wait_percentile_s(99):.2f} s",
            f"slowdown: mean {self.mean_slowdown:.2f}, "
            f"p95 {self.slowdown_percentile(95):.2f}",
        ]
        if self.budget_violations:
            lines.append(
                f"cluster-budget violations: {len(self.budget_violations)}"
            )
            lines.extend(f"  {v}" for v in self.budget_violations[:5])
        return "\n".join(lines)

    def summary_line(self) -> str:
        return (
            f"{self.spec.describe()}: {self.completed}/{self.submitted} jobs, "
            f"makespan {self.makespan_s:.1f} s, "
            f"{self.energy_per_job_j:.0f} J/job, "
            f"p95 wait {self.wait_percentile_s(95):.2f} s, "
            f"peak {self.peak_power_w:.0f} W"
        )
