"""Bounded admission queue with backpressure shedding.

The scheduler admits arriving jobs into a FIFO of bounded depth; a job
arriving at a full queue is *shed* (rejected) rather than buffered
without bound — the open-loop trace keeps arriving regardless, so the
bound is what turns overload into a measurable rejection rate instead of
unbounded queue growth.  Depth accounting (current and peak) is part of
the queue itself so the admission-control invariant — depth never
exceeds the bound — is checkable from the outside.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.sched.workload import Job


class AdmissionQueue:
    """FIFO of queued jobs with a hard depth bound."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigError(f"queue depth must be >= 1, got {depth!r}")
        self.depth = depth
        self._jobs: list[Job] = []
        self.admitted = 0
        self.rejected = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Queued jobs in FCFS order (the snapshot policies see)."""
        return tuple(self._jobs)

    def offer(self, job: Job) -> bool:
        """Admit ``job`` if there is room; returns False when shed."""
        if len(self._jobs) >= self.depth:
            self.rejected += 1
            return False
        self._jobs.append(job)
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, len(self._jobs))
        return True

    def take(self, position: int) -> Job:
        """Remove and return the job at ``position`` (policy's pick)."""
        if not 0 <= position < len(self._jobs):
            raise ConfigError(
                f"policy chose queue position {position} but the queue "
                f"holds {len(self._jobs)} jobs"
            )
        return self._jobs.pop(position)

    def head(self) -> Optional[Job]:
        return self._jobs[0] if self._jobs else None
