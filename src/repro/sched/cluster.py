"""The multi-node scheduled cluster simulation.

One shared discrete-event engine carries N :class:`SchedNode` stacks
(each the full single-node pipeline: simulated hardware, qthreads
runtime, RCRdaemon, region client, power clamp), the existing
:class:`~repro.cluster.coordinator.PowerCoordinator` re-dividing the
global budget, and the scheduler itself: trace arrivals feed a bounded
:class:`~repro.sched.queue.AdmissionQueue`, and a repeating scheduling
tick snapshots the cluster and asks the placement policy where queued
jobs should run.

Arrivals are *streamed*: the trace is pulled lazily from
:func:`~repro.sched.workload.iter_trace` and at most
:data:`ARRIVAL_WINDOW` arrival events are in the engine at once — each
arrival that fires schedules the next job from the iterator, so a
million-job trace never materializes.  Finished jobs fold into a
:class:`~repro.sched.aggregate.SchedAccumulator` as they complete;
per-job :class:`~repro.sched.result.JobRecord` tuples are kept only
when the spec's ``retain_jobs`` flag says so.

A :class:`ClusterSim` can also run a *segment* of a trace (``start`` +
``limit``) against carried accumulator state: the checkpoint/resume
runner in :mod:`repro.sched.checkpoint` drives one fresh sim per
segment, draining between segments, which is what makes kill-and-resume
bit-identical to an uninterrupted segmented run.

Unlike :class:`~repro.cluster.node_sim.ClusterNode` (one workload per
node, then done), a :class:`SchedNode` runs a *sequence* of jobs: the
runtime's root-task slot is reused per job (``spawn_root`` is re-armable
once the previous root completes) and every job gets its own named
measurement region, so per-job energy figures come from the same
RCR path as the paper's single-node tables.

Teardown mirrors the hardened ``run_cluster`` contract: the coordinator,
the scheduling tick and every node's clamp/daemon timers are cancelled
in a ``finally``, so even a timed-out run leaves no repeating events in
the engine.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Optional

from repro.apps import build_app
from repro.config import MachineConfig, PAPER_MACHINE, RuntimeConfig
from repro.errors import SimulationError
from repro.harness.telemetry import TelemetryBus
from repro.openmp import OmpEnv
from repro.qthreads import Runtime
from repro.rcr import Blackboard, RCRDaemon, RegionClient, meters
from repro.sched import telemetry as stel
from repro.sched.aggregate import SchedAccumulator
from repro.sched.policy import (
    ClusterState,
    NodeView,
    PlacementPolicy,
    make_policy,
)
from repro.sched.queue import AdmissionQueue
from repro.sched.result import JobRecord, SchedResult
from repro.sched.workload import Job, iter_trace
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.throttle.clamp import PowerClampController

from repro.cluster.coordinator import PowerCoordinator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.spec import SchedSpec

#: Bounded arrival lookahead: at most this many not-yet-fired arrival
#: events live in the engine at once; each arrival that fires pulls the
#: next job off the lazy trace iterator.  The window only bounds memory
#: — arrival *times* come from the trace, so any value >= 1 produces the
#: identical simulation.
ARRIVAL_WINDOW = 64


class SchedNode:
    """One cluster node that runs scheduler-dispatched jobs in sequence.

    Presents the same duck-typed surface the
    :class:`~repro.cluster.coordinator.PowerCoordinator` reads off
    ``ClusterNode`` — ``name``, ``clamp``, ``measured_power_w``,
    ``done``, ``wants_more_power`` — where "done" means *idle*: an idle
    node bids only the power floor, so budget flows to nodes with work.

    Finished jobs are handed to the owning sim's ``_on_finish`` callback
    rather than accumulated here, so a node's memory footprint is
    independent of how many jobs it has run.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        *,
        threads: int = 16,
        budget_w: float = 100.0,
        machine: MachineConfig = PAPER_MACHINE,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.engine = engine
        self.runtime = Runtime(
            machine,
            RuntimeConfig(num_threads=threads),
            engine=engine,
            seed=seed,
            stop_engine_on_done=False,
        )
        self.blackboard = Blackboard()
        self.daemon = RCRDaemon(engine, self.runtime.node, self.blackboard)
        self.daemon.start()
        self.client = RegionClient(
            engine, self.blackboard, machine.sockets, daemon=self.daemon
        )
        self.clamp = PowerClampController(
            engine, self.runtime.scheduler, self.blackboard, budget_w
        )
        self.clamp.start()
        self._current: Optional[Job] = None
        self._start_s = 0.0
        self._on_finish = None  # set by ClusterSim

    # ------------------------------------------ coordinator duck-typing
    @property
    def done(self) -> bool:
        """True while the node is idle (bids only the floor)."""
        return self._current is None

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def measured_power_w(self) -> float:
        return self.blackboard.read_value(meters.NODE_POWER_W, default=0.0)

    @property
    def wants_more_power(self) -> bool:
        return self.busy and self.clamp.pressure > 0.0

    # ----------------------------------------------------- job lifecycle
    def start_job(self, job: Job) -> None:
        """Dispatch ``job`` onto this node (must be idle)."""
        if self._current is not None:
            raise SimulationError(
                f"node {self.name} is busy with j{self._current.index}; "
                f"cannot place j{job.index}"
            )
        self._current = job
        self._start_s = self.engine.now
        region = self._region_name(job)
        self.client.start(region)
        program = build_app(
            job.app,
            OmpEnv(num_threads=job.threads),
            compiler=job.compiler,
            optlevel=job.optlevel,
            scale=job.scale,
        )
        root = self.runtime.spawn_root(program, label=f"{self.name}:j{job.index}")
        root.add_listener(lambda _task: self._finish_job())

    def _region_name(self, job: Job) -> str:
        return f"{self.name}:j{job.index}"

    def _finish_job(self) -> None:
        job = self._current
        assert job is not None
        report = self.client.end(self._region_name(job))
        record = JobRecord(
            index=job.index,
            app=job.app,
            threads=job.threads,
            node=self.name,
            submit_s=job.submit_s,
            start_s=self._start_s,
            finish_s=self.engine.now,
            time_s=report.elapsed_s,
            energy_j=report.energy_j,
            avg_watts=report.avg_watts,
        )
        self._current = None
        if self._on_finish is not None:
            self._on_finish(self, record)

    def shutdown(self) -> None:
        """Cancel the node's repeating timers (idempotent)."""
        self.clamp.stop()
        self.daemon.stop()


def build_result(
    spec: "SchedSpec",
    accumulator: SchedAccumulator,
    records: list[JobRecord],
    *,
    wall_s: float = 0.0,
) -> SchedResult:
    """Assemble the frozen :class:`SchedResult` from streaming state.

    Shared by the single-segment, checkpointed and analytic runners so
    every path produces structurally identical results.
    """
    stats = accumulator.snapshot()
    return SchedResult(
        spec=spec,
        jobs=tuple(sorted(records, key=lambda r: r.index)),
        rejected=tuple(accumulator.rejected_indices),
        makespan_s=stats.makespan_s,
        peak_power_w=stats.peak_power_w,
        jobs_per_node=dict(stats.jobs_per_node),
        coordinator_rounds=stats.coordinator_rounds,
        engine_events=stats.engine_events,
        peak_queue_depth=stats.peak_queue_depth,
        budget_violations=tuple(accumulator.violations),
        stats=stats,
        wall_s=wall_s,
    )


def emit_finished(
    bus: TelemetryBus, spec: "SchedSpec", result: SchedResult
) -> None:
    """Emit the run-complete telemetry event (one per logical run)."""
    bus.emit(stel.SchedFinished(
        policy=spec.policy, profile=spec.profile,
        submitted=result.submitted, completed=result.completed,
        rejected=result.rejected_count, makespan_s=result.makespan_s,
        peak_power_w=result.peak_power_w, budget_w=spec.budget_w,
    ))


class ClusterSim:
    """Drives one scheduled run (or one segment of one): trace in,
    accumulator folds out, :class:`SchedResult` on :meth:`run`."""

    def __init__(
        self,
        spec: "SchedSpec",
        *,
        bus: Optional[TelemetryBus] = None,
        engine: Optional[Engine] = None,
        start: int = 0,
        limit: Optional[int] = None,
        accumulator: Optional[SchedAccumulator] = None,
        records: Optional[list[JobRecord]] = None,
        registry=None,
        tracer=None,
    ) -> None:
        self.spec = spec
        self.bus = bus if bus is not None else TelemetryBus()
        #: Optional observability hooks (duck-typed ``repro.obs``
        #: objects; this module never imports the package).  Metrics use
        #: wall clocks only for the policy's own compute time; *span
        #: timestamps are sim-time* (explicit ``at=engine.now``), so a
        #: Chrome trace of a campaign shows the simulated timeline and
        #: enabling tracing cannot perturb the physics.
        self.tracer = tracer
        self._m_dispatched = self._m_shed = self._m_select = None
        self._m_clamp = None
        if registry is not None:
            self._m_dispatched = registry.counter(
                "sched_jobs_dispatched_total",
                "Jobs placed onto nodes, by policy.", labels=("policy",))
            self._m_shed = registry.counter(
                "sched_jobs_shed_total",
                "Arrivals rejected by the full admission queue.")
            self._m_select = registry.histogram(
                "sched_policy_select_seconds",
                "Wall seconds per placement-policy select() call.",
                labels=("policy",))
            self._m_clamp = registry.counter(
                "sched_clamp_rounds_total",
                "Coordinator rounds with at least one node clamped "
                "below its full thread count.")
            self._m_dispatched.inc(0.0, policy=spec.policy)
            self._m_shed.inc(0.0)
            self._m_clamp.inc(0.0)
        self._job_spans: dict[str, object] = {}
        self.engine = engine if engine is not None else Engine()
        self.policy: PlacementPolicy = make_policy(spec.policy, model=spec.predictor)
        if limit is None:
            limit = spec.jobs - start
        self._segment_jobs = limit
        #: Lazy source of this segment's jobs; never materialized.
        self._source = itertools.islice(
            iter_trace(
                spec.profile,
                jobs=spec.jobs,
                rate_jobs_per_s=spec.rate_jobs_per_s,
                seed=spec.seed,
                apps=spec.apps,
                scale=spec.scale,
                start=start,
            ),
            limit,
        )
        self.accumulator = (
            accumulator if accumulator is not None else SchedAccumulator()
        )
        self.records: list[JobRecord] = records if records is not None else []
        self.queue = AdmissionQueue(spec.queue_depth)
        self.nodes = [
            SchedNode(
                f"node{i}",
                self.engine,
                threads=spec.node_threads,
                budget_w=spec.budget_w / spec.nodes,
                seed=spec.seed + i,
            )
            for i in range(spec.nodes)
        ]
        for node in self.nodes:
            self.accumulator.note_node(node.name)
        self.coordinator = PowerCoordinator(
            self.engine,
            self.nodes,
            spec.budget_w,
            period_s=spec.coordinator_period_s,
        )
        self._scheduled = 0
        self._arrived = 0
        self._tick_event = None
        #: Segment start clock; the time limit is relative to it.
        self._t0_sim = self.engine.now
        for node in self.nodes:
            node._on_finish = self._job_finished

    # ------------------------------------------------------------------
    def run(self) -> SchedResult:
        """Execute this sim's whole job range and build the result."""
        t0 = time.perf_counter()
        self.run_segment()
        result = build_result(
            self.spec,
            self.accumulator,
            self.records,
            wall_s=time.perf_counter() - t0,
        )
        emit_finished(self.bus, self.spec, result)
        return result

    def run_segment(self) -> float:
        """Drive this segment to drain; returns the drain-time clock.

        Folds the segment's run-level aggregates (peak power, queue
        depth, coordinator rounds, engine events, budget violations)
        into the accumulator; always tears the timers down.
        """
        spec = self.spec
        self._prime_arrivals()
        self.coordinator.start()
        self._schedule_tick()
        try:
            while not self._finished():
                if self.engine.now > self._t0_sim + spec.time_limit_s:
                    raise SimulationError(
                        f"scheduled run exceeded {spec.time_limit_s} s with "
                        f"{len(self.queue)} queued and "
                        f"{sum(1 for n in self.nodes if n.busy)} running jobs"
                    )
                self.engine.run(until=self.engine.now + spec.period_s)
        finally:
            self.coordinator.stop()
            if self._tick_event is not None:
                self._tick_event.cancel()
                self._tick_event = None
            for node in self.nodes:
                node.shutdown()

        from repro.validate.cluster import check_cluster_budgets

        self.accumulator.add_violations(
            check_cluster_budgets(
                self.coordinator.samples, spec.budget_w, nodes=len(self.nodes)
            )
        )
        if self._m_clamp is not None:
            for sample in self.coordinator.samples:
                if any(limit < spec.node_threads
                       for limit in sample.clamp_limits.values()):
                    self._m_clamp.inc()
        self.accumulator.add_segment(
            peak_power_w=self.coordinator.peak_cluster_power_w,
            peak_queue_depth=self.queue.peak_depth,
            coordinator_rounds=len(self.coordinator.samples),
            engine_events=self.engine.fired,
        )
        return self.engine.now

    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return (
            self._arrived == self._segment_jobs
            and len(self.queue) == 0
            and all(not node.busy for node in self.nodes)
        )

    def _prime_arrivals(self) -> None:
        """Top the arrival window back up from the lazy trace source.

        A resumed segment's first arrivals may carry submit times earlier
        than the carried clock (the previous segment drained past them);
        they fire immediately at the current clock, identically in the
        uninterrupted and resumed executions of the same spec.
        """
        while (
            self._scheduled - self._arrived < ARRIVAL_WINDOW
            and self._scheduled < self._segment_jobs
        ):
            job = next(self._source)
            self.engine.schedule_at(
                max(job.submit_s, self.engine.now),
                self._arrival(job),
                label=f"arrive-j{job.index}",
            )
            self._scheduled += 1

    def _arrival(self, job: Job):
        def fire() -> None:
            self._arrived += 1
            self._prime_arrivals()
            self.bus.emit(stel.JobSubmitted(
                index=job.index, app=job.app, threads=job.threads,
                time_s=self.engine.now,
            ))
            if not self.queue.offer(job):
                self.accumulator.add_rejection(job.index)
                if self._m_shed is not None:
                    self._m_shed.inc()
                self.bus.emit(stel.JobRejected(
                    index=job.index, app=job.app,
                    queue_depth=self.queue.depth, time_s=self.engine.now,
                ))
                return
            # Let the policy react to the arrival immediately rather than
            # waiting out the rest of the scheduling period.
            self._dispatch()
        return fire

    def _job_finished(self, node: SchedNode, record: JobRecord) -> None:
        if self.tracer is not None:
            span = self._job_spans.pop(node.name, None)
            if span is not None:
                self.tracer.finish(span, at=self.engine.now,
                                   energy_j=record.energy_j)
        self.accumulator.add_job(record)
        if self.spec.retain_jobs:
            self.records.append(record)
        self.bus.emit(stel.JobFinished(
            index=record.index, app=record.app, node=node.name,
            service_s=record.time_s, energy_j=record.energy_j,
            watts=record.avg_watts, time_s=self.engine.now,
        ))
        # A node just went idle: give the policy first refusal before the
        # next periodic tick.
        self._dispatch()

    def _schedule_tick(self) -> None:
        self._tick_event = self.engine.schedule(
            self.spec.period_s, self._tick, priority=Priority.DAEMON,
            label="sched-tick",
        )

    def _tick(self) -> None:
        self._dispatch()
        self._schedule_tick()

    def _snapshot(self) -> tuple[list[NodeView], ClusterState]:
        views = [
            NodeView(
                name=node.name,
                busy=node.busy,
                budget_w=node.clamp.budget_w,
                measured_power_w=node.measured_power_w,
                clamp_pressure=node.clamp.pressure,
            )
            for node in self.nodes
        ]
        total = sum(v.measured_power_w for v in views)
        state = ClusterState(
            time_s=self.engine.now,
            global_budget_w=self.spec.budget_w,
            total_power_w=total,
        )
        return views, state

    def _dispatch(self) -> None:
        """Ask the policy for placements until it holds or runs dry."""
        by_name = {node.name: node for node in self.nodes}
        while len(self.queue) > 0:
            views, state = self._snapshot()
            if self._m_select is not None:
                t0 = time.perf_counter()
                pick = self.policy.select(self.queue.jobs, views, state)
                self._m_select.observe(time.perf_counter() - t0,
                                       policy=self.spec.policy)
            else:
                pick = self.policy.select(self.queue.jobs, views, state)
            if pick is None:
                return
            position, node_name = pick
            node = by_name.get(node_name)
            if node is None or node.busy:
                raise SimulationError(
                    f"policy {self.spec.policy!r} chose "
                    f"{'unknown' if node is None else 'busy'} node "
                    f"{node_name!r}"
                )
            job = self.queue.take(position)
            node.start_job(job)
            if self._m_dispatched is not None:
                self._m_dispatched.inc(policy=self.spec.policy)
            if self.tracer is not None:
                self._job_spans[node.name] = self.tracer.start(
                    f"{job.app}:j{job.index}", at=self.engine.now,
                    track=node.name, threads=job.threads,
                    policy=self.spec.policy,
                    wait_s=self.engine.now - job.submit_s)
            self.bus.emit(stel.JobPlaced(
                index=job.index, app=job.app, node=node.name,
                policy=self.spec.policy,
                wait_s=self.engine.now - job.submit_s,
                time_s=self.engine.now,
            ))


def run_sched(
    spec: "SchedSpec",
    *,
    bus: Optional[TelemetryBus] = None,
    engine: Optional[Engine] = None,
    checkpoint_dir=None,
    registry=None,
    tracer=None,
) -> SchedResult:
    """Run a spec via whichever execution path it selects.

    ``checkpoint_dir`` (a path) enables atomic between-segment
    checkpoints and resume for specs with ``segment_jobs`` set; it is an
    execution detail (where on disk), never part of the spec digest.
    ``registry``/``tracer`` attach observability (full simulation path
    only — the analytic and segmented paths build their own sims); like
    ``bus``, they are execution details that never reach the digest.
    """
    if spec.execution == "analytic":
        from repro.sched.analytic import run_analytic

        return run_analytic(spec, bus=bus, checkpoint_dir=checkpoint_dir)
    if spec.segment_jobs:
        from repro.sched.checkpoint import run_segmented

        return run_segmented(spec, bus=bus, checkpoint_dir=checkpoint_dir)
    return ClusterSim(spec, bus=bus, engine=engine, registry=registry,
                      tracer=tracer).run()
