"""Cluster-budget invariants for coordinated multi-node runs.

Three invariants over the :class:`~repro.cluster.coordinator`'s
per-round samples, all in the strict ``cluster-budget`` category (no
fault profile can explain a broken budget split — the coordinator's
arithmetic is ground truth, not a measurement):

* **division** — the per-node budgets of every round sum to at most the
  global budget, *exactly*: the re-division shaves float overshoot by
  construction, so ``sum(budgets) <= global`` with no epsilon.
* **floor** — every node's budget is at least
  :data:`~repro.cluster.coordinator.NODE_FLOOR_W`; a starved node could
  never finish its work.
* **enforcement** — each node's *measured* power stays within its budget
  up to the clamp's reaction tolerance, *while the clamp still has
  threads to shed*.  Two escape hatches are physics, not bugs: running
  work segments cannot be preempted mid-chunk, so a freshly-lowered
  budget takes a round or two to bite; and a node already shed to its
  thread floor is doing everything concurrency throttling can do — a
  tight budget under a hot single-thread workload stays over, correctly.
  The invariant therefore fires only on *sustained* consecutive rounds
  above ``budget * CLAMP_TOLERANCE`` during which the clamp had shedding
  room it did not use — a breach the clamp should have corrected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.cluster.coordinator import CoordinatorSample, NODE_FLOOR_W
from repro.validate.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.telemetry import TelemetryBus
    from repro.sched.spec import SchedSpec

#: Measured power may transiently exceed a node's budget while the clamp
#: reacts; a *sustained* excursion past budget × tolerance is a failure.
CLAMP_TOLERANCE = 1.10

#: Consecutive over-tolerance-with-shed-room coordinator rounds that
#: constitute a breach.  The clamp sheds every 0.1 s against a 1 s
#: coordination period, but threads mid-segment only return at segment
#: boundaries, so give it a few full rounds before calling it broken.
SUSTAINED_ROUNDS = 3


def check_budget_division(
    samples: Sequence[CoordinatorSample], global_budget_w: float
) -> Iterable[Violation]:
    """Per-round budget sums must never exceed the global budget (exact)."""
    for sample in samples:
        total = sum(sample.budgets_w.values())
        if total > global_budget_w:
            yield Violation(
                invariant="budget-division",
                category="cluster-budget",
                message=(
                    f"node budgets sum to {total!r} W, exceeding the "
                    f"global budget {global_budget_w!r} W"
                ),
                time_s=sample.time_s,
            )


def check_budget_floor(
    samples: Sequence[CoordinatorSample], floor_w: float = NODE_FLOOR_W
) -> Iterable[Violation]:
    """Every node keeps at least the guaranteed power floor."""
    for sample in samples:
        for name, budget in sorted(sample.budgets_w.items()):
            if budget < floor_w:
                yield Violation(
                    invariant="budget-floor",
                    category="cluster-budget",
                    message=(
                        f"node {name} was assigned {budget:.3f} W, below "
                        f"the {floor_w:.1f} W floor"
                    ),
                    time_s=sample.time_s,
                )


def check_budget_enforcement(
    samples: Sequence[CoordinatorSample],
    *,
    tolerance: float = CLAMP_TOLERANCE,
    sustained_rounds: int = SUSTAINED_ROUNDS,
) -> Iterable[Violation]:
    """Measured node power must not stay over budget with shed room left.

    A round counts toward a node's breach streak only when the node is
    over ``budget * tolerance`` *and* its clamp still had threads to
    shed (see the module docstring for why either alone is legitimate).
    A streak reaching ``sustained_rounds`` yields one violation (at the
    round that completed it), then keeps extending rather than re-firing
    every round, so a single long breach reports once.
    """
    streaks: dict[str, int] = {}
    for sample in samples:
        for name, power in sorted(sample.node_power_w.items()):
            budget = sample.budgets_w.get(name)
            if (
                budget is None
                or power <= budget * tolerance
                or not sample.shed_room(name)
            ):
                streaks[name] = 0
                continue
            streaks[name] = streaks.get(name, 0) + 1
            if streaks[name] == sustained_rounds:
                yield Violation(
                    invariant="budget-enforcement",
                    category="cluster-budget",
                    message=(
                        f"node {name} measured {power:.1f} W against a "
                        f"{budget:.1f} W budget for {sustained_rounds} "
                        f"consecutive rounds with threads left to shed "
                        f"(tolerance ×{tolerance:.2f})"
                    ),
                    time_s=sample.time_s,
                )


def check_cluster_budgets(
    samples: Sequence[CoordinatorSample],
    global_budget_w: float,
    *,
    nodes: int = 0,
) -> list[Violation]:
    """Run every cluster-budget invariant over a coordinator trace.

    ``nodes`` is informational only (0 = unknown); the checks read the
    node set out of each sample.
    """
    violations: list[Violation] = []
    violations.extend(check_budget_division(samples, global_budget_w))
    violations.extend(check_budget_floor(samples))
    violations.extend(check_budget_enforcement(samples))
    return violations


# ----------------------------------------------------------------------
# the ``repro validate`` cluster section
# ----------------------------------------------------------------------
def cluster_corpus(quick: bool = False) -> "list[SchedSpec]":
    """Scheduled-run scenarios the validate CLI sweeps the invariants over.

    Spans the stress axes that historically bend budget arithmetic: a
    tight budget (floors dominate, shaving matters), an ample one
    (proportional split dominates), the budget-respecting policy and the
    greedy one, and a bursty trace that saturates admission.
    """
    from repro.sched.spec import SchedSpec

    specs = [
        SchedSpec(profile="bursty", policy="fcfs", nodes=4, budget_w=300.0,
                  jobs=8, label="bursty/fcfs tight 300W"),
        SchedSpec(profile="poisson", policy="waterfill", nodes=4,
                  budget_w=500.0, jobs=8, label="poisson/waterfill ample 500W"),
    ]
    if not quick:
        specs.extend([
            SchedSpec(profile="diurnal", policy="edp", nodes=3,
                      budget_w=260.0, jobs=8, label="diurnal/edp tight 260W"),
            SchedSpec(profile="steady", policy="bestfit", nodes=2,
                      budget_w=400.0, jobs=8, label="steady/bestfit ample 400W"),
        ])
    return specs


@dataclass
class ClusterValidationResult:
    """Outcome of sweeping the cluster-budget invariants."""

    labels: list[str] = field(default_factory=list)
    rounds: list[int] = field(default_factory=list)
    violations: list[tuple[Violation, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(self.violations)

    @property
    def total_rounds(self) -> int:
        return sum(self.rounds)

    def format(self) -> str:
        lines = ["cluster-budget invariants (coordinator round audits):"]
        for label, rounds, found in zip(
            self.labels, self.rounds, self.violations
        ):
            verdict = "ok" if not found else f"{len(found)} VIOLATIONS"
            lines.append(f"  {label:<36} {rounds:>4} rounds  {verdict}")
            for violation in found:
                lines.append(f"      {violation}")
        lines.append(
            f"RESULT: " + (
                f"PASS ({self.total_rounds} rounds, 3 invariants each)"
                if self.ok else "FAIL"
            )
        )
        return "\n".join(lines)


def run_cluster_validation(
    specs: Optional[Sequence["SchedSpec"]] = None,
    *,
    quick: bool = False,
    bus: "Optional[TelemetryBus]" = None,
) -> ClusterValidationResult:
    """Run the cluster corpus and audit every coordinator round.

    Serial by design: each run already fans its nodes out on one engine,
    and the audits are post-run scans over the coordinator's samples.
    """
    from repro.sched.cluster import run_sched

    if specs is None:
        specs = cluster_corpus(quick=quick)
    result = ClusterValidationResult()
    for spec in specs:
        sched_result = run_sched(spec, bus=bus)
        result.labels.append(spec.describe())
        result.rounds.append(sched_result.coordinator_rounds)
        result.violations.append(sched_result.budget_violations)
    return result
