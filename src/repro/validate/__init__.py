"""Physics-invariant sanitizer and differential validation.

The measurement substrate this reproduction rests on — RAPL deltas, wrap
handling, per-socket power integration — is exactly the part of the
stack the measurement-reliability literature shows going subtly wrong.
This package checks it continuously:

* :class:`~repro.validate.checker.InvariantChecker` — attachable runtime
  sanitizer mirroring the energy/thermal integrators in bit-identical
  shadow ledgers and re-deriving cached rates, power and registers from
  scratch on a fixed cadence;
* :mod:`~repro.validate.records` — post-run audits of the harness
  ledgers (exact reconstruction of derived quantities, measured-vs-truth
  energy within RAPL quantisation, decision-trace accounting);
* :func:`~repro.validate.runner.validate_spec` /
  :func:`~repro.validate.runner.run_validation_sweep` — the harness
  integration behind ``repro validate``;
* :func:`~repro.validate.runner.differential_sweep` — checked-vs-unchecked
  and serial-vs-parallel replays asserting bit-identical records;
* :mod:`~repro.validate.corpus` — the scenario corpus, including every
  named fault profile (whose measurement-path violations must classify
  as *expected*, see :mod:`repro.faults.expectations`);
* :mod:`~repro.validate.cluster` — cluster-budget invariants over the
  power coordinator's rounds (division exactness, per-node floor,
  clamp-tolerance enforcement) and the scheduled-run corpus behind the
  ``repro validate`` cluster section;
* :mod:`~repro.validate.cosched` — co-scheduling invariants over the
  profiling sweep's artifacts (co-run slowdowns >= 1, solo identity
  exact, predictor costs within the roofline envelope) behind the
  ``repro validate`` cosched section;
* :mod:`~repro.validate.obs` — observability-book invariants over
  :mod:`repro.obs` metrics snapshots (histogram count identities,
  counter signs, self-measurement coherence, merge-with-empty
  identity), run by the obs smoke and tripwire tests;
* :mod:`~repro.validate.scale` — million-job-scale invariants pinning
  every streaming substitution to its exact counterpart: quantile-sketch
  tails within the guaranteed error bound, streamed-vs-retained fold
  equality, checkpoint/resume bit-identity, and the analytic mode's
  roofline-envelope oracle.
"""

from repro.validate.checker import InvariantChecker
from repro.validate.cluster import (
    ClusterValidationResult,
    check_budget_division,
    check_budget_enforcement,
    check_budget_floor,
    check_cluster_budgets,
    cluster_corpus,
    run_cluster_validation,
)
from repro.validate.corpus import METER_SPECS, corpus, differential_specs
from repro.validate.cosched import (
    CoschedValidationResult,
    check_cosched,
    check_cosched_model,
    check_cosched_store,
    run_cosched_validation,
)
from repro.validate.metering import check_overhead_monotone
from repro.validate.obs import check_obs, check_snapshot as check_obs_snapshot
from repro.validate.records import check_record
from repro.validate.scale import (
    ScaleValidationResult,
    check_resume_identity,
    check_sketch_consistency,
    check_stream_equivalence,
    run_scale_validation,
    scale_corpus,
)
from repro.validate.runner import (
    DifferentialResult,
    ValidationSweepResult,
    differential_sweep,
    run_validation_sweep,
    validate_spec,
)
from repro.validate.violations import ValidationReport, Violation

__all__ = [
    "ClusterValidationResult",
    "CoschedValidationResult",
    "DifferentialResult",
    "InvariantChecker",
    "ScaleValidationResult",
    "ValidationReport",
    "ValidationSweepResult",
    "Violation",
    "check_budget_division",
    "check_budget_enforcement",
    "check_budget_floor",
    "check_cluster_budgets",
    "check_cosched",
    "check_cosched_model",
    "check_cosched_store",
    "check_obs",
    "check_obs_snapshot",
    "check_overhead_monotone",
    "check_record",
    "check_resume_identity",
    "check_sketch_consistency",
    "check_stream_equivalence",
    "METER_SPECS",
    "cluster_corpus",
    "corpus",
    "differential_specs",
    "differential_sweep",
    "run_cluster_validation",
    "run_cosched_validation",
    "run_scale_validation",
    "run_validation_sweep",
    "scale_corpus",
    "validate_spec",
]
