"""The validation scenario corpus.

A fixed, deterministic set of :class:`~repro.harness.spec.RunSpec` that
exercises every subsystem the sanitizer watches: plain runs across apps,
compilers and thread counts; throttled runs (duty-cycle legality, decision
ledgers); a cold-start run (thermal trajectory from ambient); and one
throttled app swept across **every named fault profile**, where the
measurement-path violations the faults provoke must be classified
*expected* by the taxonomy while the physics stays clean.

``repro validate`` sweeps this corpus; the ``--quick`` subset covers one
representative of each class in a few runs for smoke use.
"""

from __future__ import annotations

from repro.config import MeterConfig
from repro.faults.profiles import PROFILES
from repro.harness.spec import RunSpec

#: Fault-free runs covering the model surface.
BASE_SPECS: tuple[RunSpec, ...] = (
    RunSpec("mergesort", "gcc", "O2", threads=16, label="mergesort gcc/O2 t16"),
    RunSpec("nqueens", "icc", "O2", threads=16, label="nqueens icc/O2 t16"),
    RunSpec("mergesort", "gcc", "O3", threads=4, label="mergesort gcc/O3 t4"),
    RunSpec("bots-fib", "gcc", "O2", threads=8, label="bots-fib gcc/O2 t8"),
    RunSpec(
        "dijkstra", "gcc", "O2", threads=16, throttle=True,
        label="dijkstra throttled",
    ),
    RunSpec(
        "lulesh", "gcc", "O2", threads=16, throttle=True, scale=0.35,
        label="lulesh throttled (0.35x)",
    ),
    RunSpec(
        "nqueens", "gcc", "O2", threads=16, warm=False,
        label="nqueens cold start",
    ),
)

#: Metering-layer runs: the counter-model backend must stay inside its
#: declared error envelope; a RAPL run charging per-read observer cost
#: must account for it exactly; and the counter-model under a flaky-MSR
#: profile must audit *completely clean* — the corrupted register is one
#: it never reads, so the taxonomy refuses to excuse anything
#: (see :func:`repro.faults.expectations.expected_categories`).
METER_SPECS: tuple[RunSpec, ...] = (
    RunSpec(
        "mergesort", "gcc", "O2", threads=16,
        meter=MeterConfig(backend="counter-model"),
        label="mergesort counter-model",
    ),
    RunSpec(
        "lulesh", "gcc", "O2", threads=12, scale=0.35,
        meter=MeterConfig(read_cost_s=0.002),
        label="lulesh rapl +read-cost",
    ),
    RunSpec(
        "dijkstra", "gcc", "O2", threads=16, throttle=True,
        meter=MeterConfig(backend="counter-model"),
        faults=PROFILES["flaky-msr"], seed=1,
        label="dijkstra counter-model faults=flaky-msr",
    ),
)

#: The app every fault profile is applied to: throttled, so the faulted
#: meters feed a live control loop.
_FAULT_APP = "dijkstra"

#: Quick subset: one plain, one throttled, one cold, two fault classes.
_QUICK_BASE = (BASE_SPECS[0], BASE_SPECS[4], BASE_SPECS[6])
_QUICK_PROFILES = ("flaky-msr", "stall")


def fault_specs(profiles: tuple[str, ...] | None = None) -> list[RunSpec]:
    """Throttled runs of the fault app under the named profiles."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    return [
        RunSpec(
            _FAULT_APP, "gcc", "O2", threads=16, throttle=True,
            faults=PROFILES[name], seed=1,
            label=f"{_FAULT_APP} faults={name}",
        )
        for name in names
    ]


def corpus(*, quick: bool = False) -> list[RunSpec]:
    """The validation corpus (or its quick subset)."""
    if quick:
        return (
            list(_QUICK_BASE)
            + fault_specs(_QUICK_PROFILES)
            + [METER_SPECS[0], METER_SPECS[1]]
        )
    return list(BASE_SPECS) + fault_specs() + list(METER_SPECS)


def differential_specs() -> list[RunSpec]:
    """Fault-free slice used by the differential replay harness."""
    return [BASE_SPECS[0], BASE_SPECS[3], BASE_SPECS[4]]
