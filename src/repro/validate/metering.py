"""Cross-record invariants for the metering layer.

The per-record audits in :mod:`repro.validate.records` (error envelope,
overhead accounting) hold for one run in isolation.  The observer-effect
contract is a statement about a *family* of runs: charging a per-read
cost must perturb the measured system monotonically with sampling cadence
— more reads, more work, more energy, never less.  These checks take the
whole family and audit that shape, which is how the ``metersweep``
experiment turns its table into a pass/fail verdict.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.record import MeasurementRecord
from repro.validate.violations import Violation

#: Slack for the cross-run energy comparison, Joules.  Two runs at
#: different cadences are different schedules, so the comparison is of
#: genuinely distinct physical executions; one RAPL tick of slack absorbs
#: boundary quantisation without hiding any real non-monotonicity (the
#: observer effect at paper-scale cadences is whole Joules).
_MONOTONE_SLACK_J = 1e-3


def check_overhead_monotone(
    records: Sequence[MeasurementRecord],
) -> list[Violation]:
    """Audit the observer effect across a cadence family of records.

    ``records`` must be the same workload/configuration at different
    sampling periods, all charging the same non-zero per-read cost and
    fault-free (faults would perturb cadence independently).  Checks,
    after sorting by period from slowest to fastest cadence:

    * ``overhead-monotone`` — ground-truth energy and elapsed time are
      non-decreasing in cadence: sampling more often must cost more, not
      less.  (Ground truth, not the measured value: a meter could *hide*
      its own overhead from its own reading, which is precisely what
      ground truth cannot do.)
    * ``overhead-charged`` — each run actually charged reads; a family
      where every read was skipped proves nothing about the observer
      effect and means the overhead core was never free.
    """
    violations: list[Violation] = []
    usable = [
        r for r in records
        if r.spec.meter is not None and r.spec.meter.read_cost_s > 0.0
    ]
    if len(usable) < 2:
        return violations
    ordered = sorted(usable, key=lambda r: -r.spec.meter.period_s)
    for record in ordered:
        if record.overhead_reads_charged == 0:
            violations.append(
                Violation(
                    invariant="overhead-charged",
                    category="model",
                    message=(
                        f"{record.spec.describe()}: no sample read was ever "
                        f"charged ({record.overhead_reads_skipped} skipped) — "
                        f"the cadence family cannot witness the observer "
                        f"effect"
                    ),
                )
            )
    for prev, cur in zip(ordered, ordered[1:]):
        p_prev = prev.spec.meter.period_s
        p_cur = cur.spec.meter.period_s
        if cur.run.energy_j < prev.run.energy_j - _MONOTONE_SLACK_J:
            violations.append(
                Violation(
                    invariant="overhead-monotone",
                    category="model",
                    message=(
                        f"ground-truth energy fell from {prev.run.energy_j!r} J "
                        f"@ {p_prev:g} s to {cur.run.energy_j!r} J @ {p_cur:g} s "
                        f"— sampling faster must not cost less"
                    ),
                )
            )
        if cur.run.elapsed_s < prev.run.elapsed_s - 1e-9:
            violations.append(
                Violation(
                    invariant="overhead-monotone",
                    category="model",
                    message=(
                        f"elapsed time fell from {prev.run.elapsed_s!r} s "
                        f"@ {p_prev:g} s to {cur.run.elapsed_s!r} s @ "
                        f"{p_cur:g} s — sampling faster must not finish sooner"
                    ),
                )
            )
    return violations
