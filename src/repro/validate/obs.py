"""Observability-book invariants: the metrics registry audits itself.

The :mod:`repro.obs` registry is pure bookkeeping — every number in a
snapshot is derived from recorded operations, so each one has an exact
cross-check.  These invariants catch snapshot corruption (a bad merge, a
mangled JSON round-trip, a sketch whose books drifted) the same way
:mod:`repro.validate.records` catches ledger corruption, and they run in
the obs smoke and the tripwire tests.

All violations are ``ledger`` category: observability is derived
bookkeeping, so no fault profile can ever explain a broken snapshot.

* **counter-sign** — counters only ever accumulate non-negative
  increments, so every counter series value is >= 0.
* **histogram-count** — a histogram sketch's ``count`` equals its zero
  count plus the sum of its bucket counts (exact integer identity).
* **histogram-extrema** — a non-empty sketch has ``min <= max``, both
  within the recorded total's reach (``total >= count * min`` and
  ``total <= count * max`` up to float slack).
* **books-coherence** — the registry's self-measurement books satisfy
  ``ops >= timed_ops`` and both are non-negative, as is the measured
  overhead.
* **merge-identity** — merging a snapshot with an empty snapshot is the
  identity (checked via canonical forms).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.validate.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsSnapshot

#: Relative slack on the total-vs-extrema envelope: sketch totals are
#: exact float sums, so only accumulated rounding needs covering.
_EXTREMA_SLACK = 1e-9


def _series_label(name: str, labels: tuple) -> str:
    if not labels:
        return name
    return f"{name}{{{','.join(map(str, labels))}}}"


def check_snapshot(snapshot: "MetricsSnapshot") -> List[Violation]:
    """Run every obs-book invariant over one metrics snapshot."""
    from repro.obs.metrics import COUNTER, HISTOGRAM, MetricsSnapshot

    violations: list[Violation] = []

    for inst in snapshot.instruments.values():
        for labels, value in inst.series.items():
            where = _series_label(inst.name, labels)
            if inst.kind == COUNTER:
                if not value >= 0:  # catches negatives and NaN alike
                    violations.append(Violation(
                        invariant="obs-counter-sign",
                        category="ledger",
                        message=(
                            f"{where}: counter value {value!r} is "
                            f"negative (or NaN); counters only take "
                            f"non-negative increments"
                        ),
                    ))
            elif inst.kind == HISTOGRAM:
                violations.extend(_check_sketch(where, value))

    violations.extend(_check_books(snapshot))

    merged = MetricsSnapshot.empty().merge(snapshot)
    if merged.canonical() != snapshot.canonical():
        violations.append(Violation(
            invariant="obs-merge-identity",
            category="ledger",
            message=(
                "merging with the empty snapshot changed the canonical "
                "form — merge is not an identity on this snapshot"
            ),
        ))
    return violations


def _check_sketch(where: str, sketch) -> Iterable[Violation]:
    bucket_total = sketch.zeros + sum(sketch.buckets.values())
    if sketch.count != bucket_total:
        yield Violation(
            invariant="obs-histogram-count",
            category="ledger",
            message=(
                f"{where}: sketch count {sketch.count} != zeros + "
                f"bucket sum {bucket_total}"
            ),
        )
    if any(n <= 0 for n in sketch.buckets.values()):
        yield Violation(
            invariant="obs-histogram-count",
            category="ledger",
            message=f"{where}: sketch holds a non-positive bucket count",
        )
    if sketch.count == 0:
        return
    lo, hi = sketch.min_value, sketch.max_value
    if lo > hi:
        yield Violation(
            invariant="obs-histogram-extrema",
            category="ledger",
            message=f"{where}: sketch min {lo!r} > max {hi!r}",
        )
        return
    slack = _EXTREMA_SLACK * max(abs(sketch.total), 1.0)
    if sketch.total < sketch.count * lo - slack:
        yield Violation(
            invariant="obs-histogram-extrema",
            category="ledger",
            message=(
                f"{where}: total {sketch.total!r} < count*min "
                f"{sketch.count * lo!r} — observations below the "
                f"recorded minimum"
            ),
        )
    if sketch.total > sketch.count * hi + slack:
        yield Violation(
            invariant="obs-histogram-extrema",
            category="ledger",
            message=(
                f"{where}: total {sketch.total!r} > count*max "
                f"{sketch.count * hi!r} — observations above the "
                f"recorded maximum"
            ),
        )


def _check_books(snapshot: "MetricsSnapshot") -> Iterable[Violation]:
    books = {
        inst.name: sum(inst.series.values())
        for inst in snapshot.instruments.values()
        if inst.name.startswith("obs_registry_")
    }
    ops = books.get("obs_registry_ops_total", 0.0)
    timed = books.get("obs_registry_timed_ops_total", 0.0)
    overhead = books.get("obs_registry_overhead_seconds_total", 0.0)
    if timed > ops:
        yield Violation(
            invariant="obs-books-coherence",
            category="ledger",
            message=(
                f"registry books: timed_ops {timed:g} > ops {ops:g} — "
                f"more sampled operations than operations"
            ),
        )
    for name, value in (("ops", ops), ("timed_ops", timed),
                        ("overhead_s", overhead)):
        if not value >= 0:
            yield Violation(
                invariant="obs-books-coherence",
                category="ledger",
                message=f"registry books: {name} is {value!r}, not >= 0",
            )


def check_obs(snapshot: "MetricsSnapshot") -> List[Violation]:
    """Alias mirroring :func:`repro.validate.cosched.check_cosched`."""
    return check_snapshot(snapshot)
