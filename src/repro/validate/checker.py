"""Runtime physics-invariant sanitizer.

:class:`InvariantChecker` attaches to a running :class:`~repro.sim.engine.Engine`
and :class:`~repro.hw.node.Node` pair through two read-only hooks:

* the node's *sync probe* fires after every integration step with the
  interval ``dt``; the checker mirrors the energy and thermal integrators
  in shadow accumulators using **bit-identical arithmetic** (the same
  ``power * dt`` product; the same :func:`repro.hw.thermal.rc_step`), so
  conservation checks are exact float equality, not tolerance bands;
* the engine's *event probe* fires after every callback returns, when
  the model is in a consistent post-event state, and checks event-queue
  accounting.

Every ``interval_s`` of simulated time the checker runs the full
invariant battery (see :meth:`InvariantChecker.check_now`).  The checker
never mutates simulator state, never schedules events and never calls a
syncing query API, so a checked run is bit-identical to an unchecked one
— the differential harness (:mod:`repro.validate.runner`) asserts exactly
that.

Violations are recorded once per ``(invariant, socket, core)`` site (a
persistent corruption would otherwise flood the record list) and counted
on every recurrence.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Optional

from repro.hw.core import CoreState
from repro.hw.msr import decode_clock_modulation, is_legal_clock_modulation
from repro.hw.power import reference_socket_power_w
from repro.hw.rapl import expected_status
from repro.hw.thermal import rc_step
from repro.throttle.dutycycle import representable_duty
from repro.validate.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.node import Node
    from repro.sim.engine import Engine
    from repro.sim.events import ScheduledEvent

#: Slack below the coldest legitimate temperature / above TjMax before the
#: bounds invariant fires (the RC step itself is checked exactly; bounds
#: only guard against physically impossible excursions).
_THERMAL_SLACK_DEGC = 1e-9

#: Relative slack on the APERF-vs-MPERF delta comparison: the deltas are
#: differences of large accumulated floats, so cancellation can cost a few
#: ulps even though every individual increment satisfies the inequality
#: exactly.  Real violations perturb whole cycles and clear this easily.
_APERF_REL_EPS = 1e-6


class InvariantChecker:
    """Attachable physics and accounting sanitizer for one run."""

    def __init__(
        self,
        *,
        interval_s: float = 0.1,
        max_records: int = 200,
        on_violation: Optional[Callable[[Violation], None]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s!r}")
        self.interval_s = interval_s
        self.max_records = max_records
        self.on_violation = on_violation
        #: First occurrence per (invariant, socket, core) site.
        self.violations: list[Violation] = []
        #: Total recurrences per invariant name (incl. deduplicated ones).
        self.violation_counts: dict[str, int] = {}
        #: Invariant evaluations performed (proof the battery ran).
        self.checks: dict[str, int] = {}
        self.batteries = 0
        self.syncs = 0
        self.events = 0
        self._engine: Optional["Engine"] = None
        self._node: Optional["Node"] = None
        self._seen: set[tuple[str, Optional[int], Optional[int]]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, engine: "Engine", node: "Node") -> None:
        """Hook the engine and node and baseline the shadow ledgers."""
        if self._engine is not None:
            raise RuntimeError("checker is already attached")
        self._engine = engine
        self._node = node
        sockets = node.config.sockets
        # Shadow ledgers, baselined at attach time.
        self._base_energy = [node.rapl[s].energy_j for s in range(sockets)]
        self._shadow_energy = [0.0] * sockets
        self._shadow_temp = [node.thermal[s].temp_degc for s in range(sockets)]
        self._temp_floor = [
            min(node.config.thermal.ambient_degc, node.thermal[s].temp_degc)
            for s in range(sockets)
        ]
        # The RAPL accumulator and the perfctr power integral receive the
        # identical increment sequence, so when they start out exactly
        # equal they stay exactly equal; if a test attached mid-divergence
        # the cross-check is skipped rather than fuzzed.
        self._counter_coherent = [
            node.rapl[s].energy_j == node.counters[s].power_integral_j
            for s in range(sockets)
        ]
        self._last_energy = list(self._base_energy)
        self._last_mperf = [core.mperf_cycles for core in node.cores]
        self._last_aperf = [core.aperf_cycles for core in node.cores]
        self._last_event_time = engine.now
        self._last_fired = engine.fired
        self._last_battery = engine.now
        node.set_sync_probe(self._on_sync)
        engine.add_probe(self._on_event)

    def detach(self) -> None:
        """Run a final battery and unhook (idempotent)."""
        engine, node = self._engine, self._node
        if engine is None or node is None:
            return
        self.check_now()
        node.set_sync_probe(None)
        engine.remove_probe(self._on_event)
        self._engine = None
        self._node = None

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def _on_sync(self, dt: float) -> None:
        node = self._node
        assert node is not None
        self.syncs += 1
        powers = node._socket_power
        shadow_e = self._shadow_energy
        shadow_t = self._shadow_temp
        thermal_cfg = node.config.thermal
        for s in range(node.config.sockets):
            p = powers[s]
            shadow_e[s] += p * dt
            shadow_t[s] = rc_step(thermal_cfg, shadow_t[s], p, dt)
        now = node._last_sync
        if now - self._last_battery >= self.interval_s:
            self.check_now()

    def _on_event(self, time: float, event: "ScheduledEvent") -> None:
        self.events += 1
        self._tally("engine-time")
        if time < self._last_event_time:
            self._record(
                "engine-time",
                "engine",
                f"event time {time!r} ran before {self._last_event_time!r}",
                time_s=time,
            )
        self._last_event_time = time
        if time - self._last_battery >= self.interval_s:
            self.check_now()

    # ------------------------------------------------------------------
    # the battery
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Evaluate every invariant against the current model state."""
        engine, node = self._engine, self._node
        if engine is None or node is None:
            raise RuntimeError("checker is not attached")
        now = engine.now
        self.batteries += 1
        self._last_battery = now
        cfg = node.config
        sockets = cfg.sockets

        # --- engine accounting ------------------------------------------
        self._tally("engine-accounting")
        if engine.pending < 0:
            self._record(
                "engine-accounting", "engine",
                f"pending event count is negative: {engine.pending}",
                time_s=now,
            )
        if engine.fired < self._last_fired:
            self._record(
                "engine-accounting", "engine",
                f"fired counter moved backwards: {engine.fired} < {self._last_fired}",
                time_s=now,
            )
        self._last_fired = engine.fired

        # --- independently re-derived contention state ------------------
        mcfg = cfg.memory
        mlp = mcfg.mlp_per_core
        knee = mcfg.knee_refs
        busy_state = CoreState.BUSY
        ref_demand = [0.0] * sockets
        busy_in = [0] * sockets
        for s in range(sockets):
            demand = 0.0
            busy = 0
            for core in node._socket_cores[s]:
                if core.state is busy_state and core.segment is not None:
                    demand += mlp * core.segment.mem_fraction
                    busy += 1
            ref_demand[s] = demand
            busy_in[s] = busy
        busy_total = sum(busy_in)

        for s in range(sockets):
            self._check_socket(node, s, now, ref_demand[s], knee, mcfg)
        self._check_rates(node, now, ref_demand, knee, busy_total)
        for core in node.cores:
            self._check_core(node, core, now)

    # ------------------------------------------------------------------
    def _check_socket(self, node, s, now, demand, knee, mcfg):
        rapl = node.rapl[s]
        actual_e = rapl.energy_j

        self._tally("energy-conservation")
        expect_e = self._base_energy[s] + self._shadow_energy[s]
        if actual_e != expect_e:
            self._record(
                "energy-conservation", "model",
                f"RAPL accumulator {actual_e!r} J != integrated power "
                f"{expect_e!r} J (diff {actual_e - expect_e:.3e} J)",
                time_s=now, socket=s,
            )

        self._tally("energy-monotonic")
        if actual_e < self._last_energy[s]:
            self._record(
                "energy-monotonic", "model",
                f"energy moved backwards: {actual_e!r} < {self._last_energy[s]!r}",
                time_s=now, socket=s,
            )
        self._last_energy[s] = actual_e

        if self._counter_coherent[s]:
            self._tally("energy-counter-coherence")
            integral = node.counters[s].power_integral_j
            if actual_e != integral:
                self._record(
                    "energy-counter-coherence", "model",
                    f"RAPL accumulator {actual_e!r} J != perfctr power "
                    f"integral {integral!r} J",
                    time_s=now, socket=s,
                )

        # A negative accumulator has no well-defined register image (the
        # units helpers reject it); conservation/monotonicity above have
        # already flagged the corruption, so don't let the sanitizer die
        # deriving a register from garbage.
        self._tally("rapl-register")
        raw = rapl.read_status()
        expect_raw = expected_status(actual_e) if actual_e >= 0 else None
        if expect_raw is not None and raw != expect_raw:
            self._record(
                "rapl-register", "model",
                f"MSR_PKG_ENERGY_STATUS {raw} != {expect_raw} implied by "
                f"{actual_e!r} J",
                time_s=now, socket=s,
            )

        therm = node.thermal[s]
        temp = therm.temp_degc
        self._tally("thermal-step")
        if temp != self._shadow_temp[s]:
            self._record(
                "thermal-step", "model",
                f"die temperature {temp!r} degC != shadow RC trajectory "
                f"{self._shadow_temp[s]!r} degC",
                time_s=now, socket=s,
            )

        self._tally("thermal-bounds")
        tjmax = node.config.thermal.tjmax_degc
        if (
            temp < self._temp_floor[s] - _THERMAL_SLACK_DEGC
            or temp > tjmax + _THERMAL_SLACK_DEGC
        ):
            self._record(
                "thermal-bounds", "model",
                f"die temperature {temp!r} degC outside "
                f"[{self._temp_floor[s]!r}, {tjmax!r}]",
                time_s=now, socket=s,
            )

        self._tally("memory-coherence")
        mem = node._mem_state[s]
        if demand <= knee:
            stretch = 1.0
        else:
            stretch = (demand / knee) ** mcfg.contention_exponent
        bw_util = 0.0 if demand <= 0 else min(1.0, demand / knee)
        if (
            mem.demand != demand
            or mem.stretch != stretch
            or mem.bw_util != bw_util
        ):
            self._record(
                "memory-coherence", "model",
                f"cached memory state (demand={mem.demand!r}, "
                f"stretch={mem.stretch!r}, bw={mem.bw_util!r}) != re-derived "
                f"(demand={demand!r}, stretch={stretch!r}, bw={bw_util!r})",
                time_s=now, socket=s,
            )

        self._tally("power-coherence")
        priced_at = node._power_temp[s]
        if priced_at is not None:
            ref = reference_socket_power_w(
                node.config.power, node._socket_cores[s], mem.bw_util, priced_at
            )
            if node._socket_power[s] != ref:
                self._record(
                    "power-coherence", "model",
                    f"cached socket power {node._socket_power[s]!r} W != "
                    f"memo-free recomputation {ref!r} W at {priced_at!r} degC",
                    time_s=now, socket=s,
                )

    # ------------------------------------------------------------------
    def _check_rates(self, node, now, ref_demand, knee, busy_total):
        """Re-derive every core's rate from scratch and compare exactly."""
        busy_state = CoreState.BUSY
        for s in range(node.config.sockets):
            demand_s = ref_demand[s]
            if demand_s <= knee:
                stretch_s = 1.0
            else:
                stretch_s = (demand_s / knee) ** node.config.memory.contention_exponent
            for core in node._socket_cores[s]:
                self._tally("rate-coherence")
                if core.state is busy_state and core.segment is not None:
                    seg = core.segment
                    exponent = seg.contention_exponent
                    if demand_s <= knee:
                        sigma = 1.0
                    elif exponent is None:
                        sigma = stretch_s
                    else:
                        sigma = (demand_s / knee) ** exponent
                    if seg.coherence_penalty > 0.0 and busy_total > 1:
                        sigma += seg.coherence_penalty * (busy_total - 1)
                    mu = seg.mem_fraction
                    wall_stretch = (1.0 - mu) / core.duty + mu * sigma
                    speed = 1.0 / wall_stretch
                    mwf = (mu * sigma) / wall_stretch if wall_stretch > 0 else 0.0
                else:
                    speed = 0.0
                    mwf = 0.0
                if core.speed != speed or core.mem_wall_fraction != mwf:
                    self._record(
                        "rate-coherence", "model",
                        f"cached rate (speed={core.speed!r}, "
                        f"mem_wall={core.mem_wall_fraction!r}) != re-derived "
                        f"(speed={speed!r}, mem_wall={mwf!r})",
                        time_s=now, socket=s, core=core.index,
                    )

    # ------------------------------------------------------------------
    def _check_core(self, node, core, now):
        i = core.index
        mperf, aperf = core.mperf_cycles, core.aperf_cycles

        self._tally("counter-monotonic")
        if mperf < self._last_mperf[i] or aperf < self._last_aperf[i]:
            self._record(
                "counter-monotonic", "model",
                f"APERF/MPERF moved backwards: mperf {mperf!r} < "
                f"{self._last_mperf[i]!r} or aperf {aperf!r} < "
                f"{self._last_aperf[i]!r}",
                time_s=now, core=i,
            )

        self._tally("aperf-mperf")
        d_m = mperf - self._last_mperf[i]
        d_a = aperf - self._last_aperf[i]
        if d_a > d_m + _APERF_REL_EPS * (abs(d_m) + 1.0):
            self._record(
                "aperf-mperf", "model",
                f"APERF advanced faster than MPERF: delta {d_a!r} > {d_m!r} "
                f"(duty cycles cannot exceed 1)",
                time_s=now, core=i,
            )
        self._last_mperf[i] = mperf
        self._last_aperf[i] = aperf

        self._tally("duty-legality")
        duty = core.duty
        if not (0.0 < duty <= 1.0) or not math.isfinite(duty):
            self._record(
                "duty-legality", "model",
                f"duty cycle {duty!r} outside (0, 1]",
                time_s=now, core=i,
            )
        elif core.state is CoreState.SPIN and not representable_duty(duty):
            self._record(
                "duty-legality", "model",
                f"spin duty {duty!r} is not a representable modulation level",
                time_s=now, core=i,
            )

        self._tally("clockmod-legality")
        raw = core.clock_mod_raw
        if not is_legal_clock_modulation(raw):
            self._record(
                "clockmod-legality", "model",
                f"IA32_CLOCK_MODULATION holds illegal value {raw!r}",
                time_s=now, core=i,
            )
        elif raw and not representable_duty(decode_clock_modulation(raw)):
            self._record(
                "clockmod-legality", "model",
                f"register {raw!r} decodes to unrepresentable duty",
                time_s=now, core=i,
            )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _tally(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def _record(
        self,
        invariant: str,
        category: str,
        message: str,
        *,
        time_s: float,
        socket: Optional[int] = None,
        core: Optional[int] = None,
    ) -> None:
        self.violation_counts[invariant] = self.violation_counts.get(invariant, 0) + 1
        site = (invariant, socket, core)
        if site in self._seen:
            return
        self._seen.add(site)
        violation = Violation(
            invariant=invariant,
            category=category,
            message=message,
            time_s=time_s,
            socket=socket,
            core=core,
        )
        if len(self.violations) < self.max_records:
            self.violations.append(violation)
        if self.on_violation is not None:
            self.on_violation(violation)
