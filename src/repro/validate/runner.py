"""Validation entry points: single-spec, corpus sweep, differential replay.

Three layers, matching the tentpole's contract:

* :func:`validate_spec` — run one spec under the
  :class:`~repro.validate.checker.InvariantChecker`, audit the resulting
  record, classify violations against the spec's fault config and return
  ``(record, report)``.  Top-level and all-scalar, so the harness can fan
  it out over a process pool.
* :func:`run_validation_sweep` — sweep a spec list in validate mode
  through the :class:`~repro.harness.executor.BatchExecutor` and
  aggregate per-run reports.
* :func:`differential_sweep` — replay a fault-free slice through the
  *unchecked serial*, *checked serial* and *unchecked parallel* paths and
  assert all three produce bit-identical records: proof the checker
  observes without perturbing and the pool without reordering physics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.harness.executor import BatchExecutor, execute_spec
from repro.harness.record import MeasurementRecord
from repro.harness.spec import RunSpec
from repro.harness.telemetry import TelemetryBus
from repro.validate.checker import InvariantChecker
from repro.validate.records import check_record
from repro.validate.violations import ValidationReport


def validate_spec(
    spec: RunSpec,
    *,
    interval_s: float = 0.1,
) -> tuple[MeasurementRecord, ValidationReport]:
    """Execute ``spec`` under the checker and audit the books.

    Dispatch mirrors :func:`~repro.harness.executor.execute_spec`: a
    spec exposing ``validate_execute`` (e.g.
    :class:`~repro.cosched.spec.CoschedSpec`) runs its own checked
    path; a self-executing spec without one (e.g.
    :class:`~repro.sched.spec.SchedSpec`, whose invariants live in the
    budget auditors) runs unchecked and reports its recorded
    violations; a plain :class:`~repro.harness.spec.RunSpec` takes the
    full measurement-stack path below.
    """
    # Deferred: expectations imports validate.violations, and the package
    # __init__ pulls this module — importing it at module scope would make
    # `import repro.faults.expectations` circular.
    from repro.experiments.runner import run_measurement
    from repro.faults.expectations import classify_violations

    validate_execute = getattr(spec, "validate_execute", None)
    if validate_execute is not None:
        return validate_execute(interval_s=interval_s)
    if not isinstance(spec, RunSpec):
        record = execute_spec(spec)
        report = ValidationReport(
            spec=spec,
            violations=tuple(getattr(record, "budget_violations", ())),
        )
        return record, report

    checker = InvariantChecker(interval_s=interval_s)
    t0 = time.perf_counter()
    result = run_measurement(**spec.to_kwargs(), checker=checker)
    record = MeasurementRecord.from_result(
        spec, result, wall_s=time.perf_counter() - t0
    )
    violations = list(checker.violations)
    violations.extend(check_record(record))
    report = ValidationReport(
        spec=spec,
        violations=classify_violations(violations, spec.faults, meter=spec.meter),
        checks=dict(checker.checks),
        batteries=checker.batteries,
        syncs=checker.syncs,
        events=checker.events,
    )
    return record, report


# ----------------------------------------------------------------------
# corpus sweep
# ----------------------------------------------------------------------
@dataclass
class ValidationSweepResult:
    """Aggregated outcome of a validate-mode sweep."""

    reports: list[ValidationReport]
    records: list[MeasurementRecord]
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def total_checks(self) -> int:
        return sum(sum(r.checks.values()) for r in self.reports)

    @property
    def invariants_exercised(self) -> set[str]:
        names: set[str] = set()
        for report in self.reports:
            names.update(report.checks)
        return names

    def format(self) -> str:
        lines = []
        for report in self.reports:
            lines.append(report.summary_line())
            for violation in report.violations:
                lines.append(f"    {violation}")
        expected = sum(len(r.expected_violations) for r in self.reports)
        unexpected = sum(len(r.unexpected) for r in self.reports)
        lines.append(
            f"\n{len(self.reports)} runs validated in {self.wall_s:.1f} s: "
            f"{self.total_checks} invariant checks across "
            f"{len(self.invariants_exercised)} invariants; "
            f"{unexpected} unexpected violations, {expected} expected "
            f"(fault-attributable)."
        )
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_validation_sweep(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    bus: Optional[TelemetryBus] = None,
    sweep: str = "validate",
) -> ValidationSweepResult:
    """Run ``specs`` in validate mode and aggregate the reports.

    Always uncached: a cache hit would skip validation, and validation is
    the entire point of the sweep.
    """
    harness = BatchExecutor(workers=workers, bus=bus, validate=True)
    t0 = time.perf_counter()
    records = harness.run(list(specs), sweep=sweep)
    wall = time.perf_counter() - t0
    reports = [harness.validation_reports[i] for i in range(len(records))]
    return ValidationSweepResult(reports=reports, records=records, wall_s=wall)


# ----------------------------------------------------------------------
# differential replay
# ----------------------------------------------------------------------
@dataclass
class DifferentialResult:
    """Bit-identity verdict across execution paths for one spec list."""

    labels: list[str] = field(default_factory=list)
    #: Per-spec: checked serial record == unchecked serial record.
    checked_identical: list[bool] = field(default_factory=list)
    #: Per-spec: parallel record == unchecked serial record.
    parallel_identical: list[bool] = field(default_factory=list)
    #: True when the pool genuinely ran with >= 2 workers (on a
    #: single-core host the executor may fall back to serial — the
    #: comparison still holds, it is just less adversarial).
    pooled: bool = False

    @property
    def ok(self) -> bool:
        return all(self.checked_identical) and all(self.parallel_identical)

    def format(self) -> str:
        lines = ["differential replay (unchecked serial as reference):"]
        for label, checked, pooled in zip(
            self.labels, self.checked_identical, self.parallel_identical
        ):
            lines.append(
                f"  {label:<36} checked={'==' if checked else 'DIFFERS'} "
                f"parallel={'==' if pooled else 'DIFFERS'}"
            )
        lines.append(
            "RESULT: " + ("PASS (bit-identical)" if self.ok else "FAIL")
        )
        return "\n".join(lines)


def differential_sweep(
    specs: Sequence[RunSpec],
    *,
    workers: int = 2,
) -> DifferentialResult:
    """Replay ``specs`` through three paths and compare records exactly.

    ``MeasurementRecord`` equality is dataclass field equality over exact
    floats (host wall time excluded), so ``==`` here *is* bit-identity of
    everything the simulation produced.
    """
    specs = list(specs)
    reference = [execute_spec(spec) for spec in specs]
    checked = [validate_spec(spec)[0] for spec in specs]
    pool = BatchExecutor(workers=workers)
    parallel = pool.run(specs, sweep="validate-differential")
    result = DifferentialResult(pooled=workers >= 2 and len(specs) >= 2)
    for spec, ref, chk, par in zip(specs, reference, checked, parallel):
        result.labels.append(spec.describe())
        result.checked_identical.append(chk == ref)
        result.parallel_identical.append(par == ref)
    return result
