"""Co-scheduling invariants: profile sanity and predictor envelopes.

Three invariants over the co-scheduling layer's artifacts — the
:class:`~repro.cosched.profile.ProfileStore` a profiling sweep produces
and the :class:`~repro.cosched.predictor.PredictorModel` fitted from it
— all in the strict ``model`` category (profiles and fits are derived
from deterministic simulations; no fault profile can explain a broken
one):

* **sensitivity** — measured co-run slowdowns never drop meaningfully
  below 1 (an antagonist cannot *speed up* its victim beyond float/
  sampling noise), and every fitted sensitivity slope is >= 0 — the
  clamp that makes predictions monotone in pressure.
* **solo identity** — each profile's recorded solo-vs-solo slowdown is
  exactly 1 within float tolerance: the baseline divided by itself; any
  drift means the sweep mismatched baselines.
* **roofline envelope** — the predictor's solo unit time and energy per
  (app, threads) land within the closed-form roofline envelope, so the
  predicted EDP (watts × time²) the ``predicted`` policy ranks queues
  by stays within the envelope squared of the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.validate.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cosched.predictor import PredictorModel
    from repro.cosched.profile import ProfileStore

#: Measured slowdown may dip fractionally below 1 (daemon sampling
#: granularity at region boundaries); below this is a real violation.
SLOWDOWN_TOLERANCE = 0.98

#: |solo_slowdown - 1| beyond this is a baseline mismatch.
SOLO_IDENTITY_TOLERANCE = 1e-9

#: Allowed ratio between a predictor entry's solo cost and the roofline
#: closed form.  The profiled base threads match the microsim within the
#: standard envelope; extrapolated thread counts inherit the base
#: residual times the exact roofline ratio, so one factor covers both.
ENVELOPE_FACTOR = 3.0


def check_cosched_store(store: "ProfileStore") -> Iterable[Violation]:
    """Sensitivity and solo-identity invariants over measured profiles."""
    for profile in store.sorted_profiles():
        if abs(profile.solo_slowdown - 1.0) > SOLO_IDENTITY_TOLERANCE:
            yield Violation(
                invariant="cosched-solo-identity",
                category="model",
                message=(
                    f"{profile.app}: solo-vs-solo slowdown is "
                    f"{profile.solo_slowdown!r}, expected exactly 1.0 "
                    f"(±{SOLO_IDENTITY_TOLERANCE})"
                ),
            )
        for cell in profile.sorted_cells():
            if cell.slowdown < SLOWDOWN_TOLERANCE:
                yield Violation(
                    invariant="cosched-sensitivity",
                    category="model",
                    message=(
                        f"{profile.app} vs {cell.injector}@{cell.level:g}: "
                        f"co-run slowdown {cell.slowdown!r} < "
                        f"{SLOWDOWN_TOLERANCE} — an antagonist cannot "
                        f"speed up its victim"
                    ),
                )
            if cell.inj_slowdown < SLOWDOWN_TOLERANCE and cell.inj_slowdown > 0:
                yield Violation(
                    invariant="cosched-sensitivity",
                    category="model",
                    message=(
                        f"{profile.app} vs {cell.injector}@{cell.level:g}: "
                        f"inflicted slowdown {cell.inj_slowdown!r} < "
                        f"{SLOWDOWN_TOLERANCE}"
                    ),
                )


def check_cosched_model(model: "PredictorModel") -> Iterable[Violation]:
    """Slope non-negativity and roofline envelope over a fitted model."""
    from repro.sched.roofline import roofline_point

    for entry in sorted(model.entries, key=lambda e: (e.app, e.threads)):
        if entry.sens_slope < 0.0:
            yield Violation(
                invariant="cosched-sensitivity",
                category="model",
                message=(
                    f"{entry.app}@{entry.threads}t: fitted sensitivity "
                    f"slope {entry.sens_slope!r} is negative — predictions "
                    f"would decrease with pressure"
                ),
            )
        point = roofline_point(entry.app, entry.threads)
        if point.time_s <= 0:
            continue
        time_ratio = entry.unit_time_s / point.time_s
        if not (1.0 / ENVELOPE_FACTOR <= time_ratio <= ENVELOPE_FACTOR):
            yield Violation(
                invariant="cosched-roofline-envelope",
                category="model",
                message=(
                    f"{entry.app}@{entry.threads}t: predictor unit time "
                    f"{entry.unit_time_s:.4f} s is {time_ratio:.2f}x the "
                    f"roofline {point.time_s:.4f} s (envelope "
                    f"×{ENVELOPE_FACTOR:g})"
                ),
            )
        energy = entry.watts * entry.unit_time_s
        if point.energy_j > 0:
            energy_ratio = energy / point.energy_j
            if not (
                1.0 / ENVELOPE_FACTOR <= energy_ratio <= ENVELOPE_FACTOR
            ):
                yield Violation(
                    invariant="cosched-roofline-envelope",
                    category="model",
                    message=(
                        f"{entry.app}@{entry.threads}t: predicted unit "
                        f"energy {energy:.1f} J is {energy_ratio:.2f}x the "
                        f"roofline {point.energy_j:.1f} J (envelope "
                        f"×{ENVELOPE_FACTOR:g})"
                    ),
                )


def check_cosched(
    store: "Optional[ProfileStore]" = None,
    model: "Optional[PredictorModel]" = None,
) -> list[Violation]:
    """Run every co-scheduling invariant over a store and/or model.

    With no arguments, audits the bundled default profiles and the
    model fitted from them — the exact artifacts the ``predicted``
    policy uses when a spec names no custom predictor.
    """
    from repro.cosched.predictor import PredictorModel, default_store

    if store is None and model is None:
        store = default_store()
    if model is None and store is not None:
        model = PredictorModel.fit(store)
    violations: list[Violation] = []
    if store is not None:
        violations.extend(check_cosched_store(store))
    if model is not None:
        violations.extend(check_cosched_model(model))
    return violations


# ----------------------------------------------------------------------
# the ``repro validate`` cosched section
# ----------------------------------------------------------------------
@dataclass
class CoschedValidationResult:
    """Outcome of auditing co-scheduling profiles and the predictor."""

    profiles: int = 0
    cells: int = 0
    entries: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = ["co-scheduling invariants (profile store + predictor):"]
        lines.append(
            f"  {self.profiles} app profiles, {self.cells} co-run cells, "
            f"{self.entries} predictor entries audited"
        )
        for violation in self.violations:
            lines.append(f"      {violation}")
        lines.append(
            "RESULT: " + (
                "PASS (sensitivity, solo-identity, roofline-envelope)"
                if self.ok else "FAIL"
            )
        )
        return "\n".join(lines)


def run_cosched_validation(
    store: "Optional[ProfileStore]" = None,
    model: "Optional[PredictorModel]" = None,
    *,
    quick: bool = False,
) -> CoschedValidationResult:
    """Audit co-scheduling artifacts (bundled defaults when omitted).

    Pure post-hoc scans over persisted artifacts — no simulation runs —
    so ``quick`` changes nothing; it is accepted for CLI symmetry with
    the other validation sections.
    """
    from repro.cosched.predictor import PredictorModel, default_store

    del quick
    if store is None and model is None:
        store = default_store()
    if model is None:
        model = PredictorModel.fit(store)
    result = CoschedValidationResult(
        violations=check_cosched(store=store, model=model),
    )
    if store is not None:
        result.profiles = len(store.profiles)
        result.cells = sum(len(p.cells) for p in store.profiles)
    result.entries = len(model.entries)
    return result
