"""Million-job-scale invariants: sketches, checkpoints, the roofline oracle.

The streaming aggregation spine (:mod:`repro.sched.aggregate`), the
segmented checkpoint/resume machinery (:mod:`repro.sched.checkpoint`)
and the analytic execution mode (:mod:`repro.sched.analytic`) exist so a
million-job trace fits in bounded memory and survives a kill — but every
one of them *replaces* an exact computation with a cheaper one, which is
exactly where silent wrongness creeps in.  This module pins each
substitution to its exact counterpart:

* **sketch-consistency** — on runs small enough to retain every
  :class:`~repro.sched.result.JobRecord`, the quantile sketches' p50 /
  p95 / p99 for wait, slowdown and energy must land within the sketch's
  *guaranteed* relative error bound of the exact nearest-rank values.
  The bound is :data:`~repro.sched.sketch.DEFAULT_REL_ERR`, not a vibes
  tolerance: a DDSketch-style sketch that misses it is broken, full
  stop.
* **stream-equivalence** — dropping per-job records (``retain_jobs=
  False``) must not change a single accumulated bit: the streamed twin
  of every corpus spec must produce an identical
  :meth:`~repro.sched.aggregate.SchedStats.canonical` fold.
* **resume-identity** — executing a segmented spec by running its first
  segment, checkpointing to disk, abandoning the process state and
  resuming from the file must yield a ``result_digest()`` equal to the
  uninterrupted run's.  This is the bit-identity contract the checkpoint
  layer advertises, checked end to end through the pickle round trip.
* **roofline-envelope** — analytic runs carry the Afzal-style closed-form
  oracle's verdict in their violations; the corpus asserts it stays
  clean on healthy runs (the oracle that cries wolf guards nothing).

All violations here are strict ``model`` category: fault injection never
perturbs aggregation arithmetic, so none of these can ever be
"expected".
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from repro.sched.sketch import DEFAULT_REL_ERR
from repro.validate.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.telemetry import TelemetryBus
    from repro.sched.result import SchedResult
    from repro.sched.spec import SchedSpec

#: Percentiles the sketch-consistency check pins (the ones ``format()``
#: and the experiment tables actually report).
CHECKED_PERCENTILES = (50.0, 95.0, 99.0)

#: Values this close to zero live in the sketch's zero bucket, where the
#: relative-error guarantee degenerates; compare absolutely there.
ZERO_EPS = 1e-9


def check_sketch_consistency(
    result: "SchedResult",
    *,
    rel_err: float = DEFAULT_REL_ERR,
) -> list[Violation]:
    """Sketch tails vs exact nearest-rank tails on a record-retaining run.

    Requires ``result.jobs`` (the exact side) and ``result.stats`` (the
    sketch side); both exist whenever ``retain_jobs=True``.
    """
    stats = result.stats
    if stats is None or not result.jobs:
        return []
    exact = {
        "wait": sorted(r.wait_s for r in result.jobs),
        "slowdown": sorted(r.slowdown for r in result.jobs),
        "energy": sorted(r.energy_j for r in result.jobs),
    }
    sketches = {
        "wait": stats.wait_sketch,
        "slowdown": stats.slowdown_sketch,
        "energy": stats.energy_sketch,
    }
    from repro.sched.result import _ranked

    violations: list[Violation] = []
    for metric in ("wait", "slowdown", "energy"):
        for pct in CHECKED_PERCENTILES:
            want = _ranked(exact[metric], pct)
            got = sketches[metric].quantile(pct)
            bound = rel_err * abs(want) + ZERO_EPS
            if abs(got - want) > bound:
                violations.append(Violation(
                    invariant="sketch-consistency",
                    category="model",
                    message=(
                        f"{metric} p{pct:g} sketch={got!r} vs "
                        f"exact={want!r} over {len(result.jobs)} jobs — "
                        f"error {abs(got - want):.3e} exceeds the "
                        f"guaranteed bound {bound:.3e} "
                        f"(rel_err={rel_err})"
                    ),
                ))
    return violations


def check_stream_equivalence(
    spec: "SchedSpec",
    retained: "SchedResult",
    *,
    bus: "Optional[TelemetryBus]" = None,
) -> list[Violation]:
    """Re-run ``spec`` with ``retain_jobs=False``; the fold must match.

    ``retain_jobs`` changes what is *kept*, never what is *computed*:
    the streamed twin consumes the identical trace through the identical
    accumulator, so its :meth:`SchedStats.canonical` string must equal
    the retaining run's bit for bit.
    """
    from repro.sched.cluster import run_sched

    streamed = run_sched(replace(spec, retain_jobs=False), bus=bus)
    if retained.stats is None or streamed.stats is None:
        return [Violation(
            invariant="stream-equivalence",
            category="model",
            message=f"run of {spec.describe()!r} produced no SchedStats",
        )]
    if retained.stats.canonical() == streamed.stats.canonical():
        return []
    return [Violation(
        invariant="stream-equivalence",
        category="model",
        message=(
            f"streamed twin of {spec.describe()!r} diverged from the "
            f"record-retaining run: stats digests "
            f"{streamed.stats.digest()} != {retained.stats.digest()}"
        ),
    )]


def check_resume_identity(
    spec: "SchedSpec",
    uninterrupted: "SchedResult",
    *,
    bus: "Optional[TelemetryBus]" = None,
) -> list[Violation]:
    """Checkpoint after segment one, resume from disk, compare digests.

    Only meaningful for segmented specs (``segment_jobs > 0``); the
    first segment is executed against a fresh carry state, persisted
    with :func:`~repro.sched.checkpoint.save_checkpoint`, and the run is
    then *resumed by file* — the in-memory state is discarded, exactly
    as after a kill.
    """
    from repro.harness.telemetry import TelemetryBus as _Bus
    from repro.sched.checkpoint import (
        SchedCheckpoint,
        _run_one_segment,
        run_segmented,
        save_checkpoint,
    )

    if spec.segment_jobs <= 0 or spec.jobs <= spec.segment_jobs:
        return []
    bus = bus if bus is not None else _Bus()
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp:
        state = SchedCheckpoint(spec_digest=spec.digest)
        limit = min(spec.segment_jobs, spec.jobs)
        state.clock_s = _run_one_segment(spec, bus, state, limit)
        state.next_start = limit
        save_checkpoint(Path(tmp), spec, state)
        del state  # the crash: everything in memory is gone
        resumed = run_segmented(spec, bus=bus, checkpoint_dir=Path(tmp))
    if resumed.result_digest() == uninterrupted.result_digest():
        return []
    return [Violation(
        invariant="resume-identity",
        category="model",
        message=(
            f"resumed run of {spec.describe()!r} is not bit-identical "
            f"to the uninterrupted run: digest "
            f"{resumed.result_digest()[:16]} != "
            f"{uninterrupted.result_digest()[:16]}"
        ),
    )]


def check_roofline_verdict(result: "SchedResult") -> list[Violation]:
    """The analytic run's built-in roofline oracle must report clean."""
    return [
        v for v in result.budget_violations
        if v.invariant.startswith("roofline-")
    ]


# ----------------------------------------------------------------------
# the ``repro validate`` scale section
# ----------------------------------------------------------------------
def scale_corpus(quick: bool = False) -> "list[SchedSpec]":
    """Scheduled-run scenarios for the million-job-scale invariants.

    Small job counts (the exact side must stay cheap) across the axes
    that stress the streaming machinery differently: full vs analytic
    execution, single-segment vs segmented, and a diurnal trace whose
    thinned arrival draws exercise the iterator re-entry hardest.
    """
    from repro.sched.spec import SchedSpec

    specs = [
        SchedSpec(profile="poisson", policy="fcfs", nodes=4, budget_w=400.0,
                  jobs=12, segment_jobs=5,
                  label="poisson/fcfs full segmented"),
        SchedSpec(profile="diurnal", policy="bestfit", nodes=4,
                  budget_w=400.0, jobs=60, rate_jobs_per_s=0.05,
                  time_limit_s=100000.0, execution="analytic",
                  segment_jobs=24, label="diurnal/bestfit analytic seg"),
    ]
    if not quick:
        specs.extend([
            SchedSpec(profile="bursty", policy="edp", nodes=3,
                      budget_w=300.0, jobs=10,
                      label="bursty/edp full single-seg"),
            SchedSpec(profile="steady", policy="waterfill", nodes=2,
                      budget_w=400.0, jobs=80, rate_jobs_per_s=0.05,
                      time_limit_s=100000.0, execution="analytic",
                      label="steady/waterfill analytic"),
        ])
    return specs


@dataclass
class ScaleValidationResult:
    """Outcome of sweeping the million-job-scale invariants."""

    labels: list[str] = field(default_factory=list)
    jobs: list[int] = field(default_factory=list)
    checks: list[int] = field(default_factory=list)
    violations: list[tuple[Violation, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(self.violations)

    @property
    def total_checks(self) -> int:
        return sum(self.checks)

    def format(self) -> str:
        lines = ["scale invariants (sketch / resume / stream / roofline):"]
        for label, jobs, checks, found in zip(
            self.labels, self.jobs, self.checks, self.violations
        ):
            verdict = "ok" if not found else f"{len(found)} VIOLATIONS"
            lines.append(
                f"  {label:<36} {jobs:>5} jobs {checks:>3} checks  {verdict}"
            )
            for violation in found:
                lines.append(f"      {violation}")
        lines.append(
            "RESULT: " + (
                f"PASS ({self.total_checks} checks)" if self.ok else "FAIL"
            )
        )
        return "\n".join(lines)


def run_scale_validation(
    specs: Optional[Sequence["SchedSpec"]] = None,
    *,
    quick: bool = False,
    bus: "Optional[TelemetryBus]" = None,
) -> ScaleValidationResult:
    """Run the scale corpus and audit every streaming substitution.

    Each spec runs once retaining records (the exact reference), then
    its streamed and resumed twins replay against it.  Serial by design,
    like :func:`~repro.validate.cluster.run_cluster_validation`.
    """
    from repro.sched.cluster import run_sched

    if specs is None:
        specs = scale_corpus(quick=quick)
    result = ScaleValidationResult()
    for spec in specs:
        reference = run_sched(spec, bus=bus)
        found: list[Violation] = []
        found.extend(check_sketch_consistency(reference))
        found.extend(check_stream_equivalence(spec, reference, bus=bus))
        found.extend(check_resume_identity(spec, reference, bus=bus))
        found.extend(check_roofline_verdict(reference))
        checks = len(CHECKED_PERCENTILES) * 3 + 1  # tails + streamed twin
        if 0 < spec.segment_jobs < spec.jobs:
            checks += 1  # the resumed twin
        if spec.execution == "analytic":
            checks += 2  # the two roofline envelope bounds
        result.labels.append(spec.describe())
        result.jobs.append(reference.completed)
        result.checks.append(checks)
        result.violations.append(tuple(found))
    return result
