"""Structured invariant-violation records.

Everything here is picklable scalars: violations are produced inside
worker processes by :func:`repro.validate.runner.validate_spec` and must
cross the process boundary and the telemetry bus unchanged.

Categories
----------
Violations carry a ``category`` that drives the expected-violation
taxonomy (see :mod:`repro.faults.expectations`):

* ``model`` — the simulator's own physics books don't balance (energy
  conservation, thermal step, power coherence, rate coherence, counter
  monotonicity).  Fault injection perturbs only the *measurement path*,
  never ground truth, so a model violation is never expected.
* ``engine`` — event-queue accounting (time monotonicity, pending >= 0).
  Never expected.
* ``ledger`` — harness bookkeeping that must reconstruct exactly
  (RunSummary average power, region wattage, decision-trace ordering).
  Never expected.
* ``cluster-budget`` — the power coordinator's budget division and
  enforcement (sum ≤ global exactly, per-node floor, measured power
  within clamp tolerance; see :mod:`repro.validate.cluster`).  Never
  expected.
* ``measurement-energy`` — the measured (RAPL-path) energy disagrees
  with ground truth beyond quantisation.  Expected under fault profiles
  that corrupt or delay energy reads.
* ``measurement-temp`` — reported temperature disagrees with the model.
  Expected under thermal-noise faults.
* ``measurement-quality`` — non-OK sample qualities on a run whose fault
  config cannot explain them.
* ``measurement-counters`` — APERF/MPERF readouts disagree with the
  model's counters.  Expected under counter-noise faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.spec import RunSpec

#: Violation categories that fault injection can legitimately explain.
MEASUREMENT_CATEGORIES = frozenset(
    {
        "measurement-energy",
        "measurement-temp",
        "measurement-quality",
        "measurement-counters",
    }
)

#: Categories that must hold on every run, faults or not.  The
#: ``cluster-budget`` category covers the coordinator's budget division
#: and enforcement (see :mod:`repro.validate.cluster`): fault injection
#: perturbs measurements, never the coordinator's arithmetic, so a
#: broken budget split is always a real failure.
STRICT_CATEGORIES = frozenset({"model", "engine", "ledger", "cluster-budget"})


@dataclass(frozen=True)
class Violation:
    """One invariant failure, reduced to picklable scalars."""

    #: Machine-readable invariant name, e.g. ``energy-conservation``.
    invariant: str
    #: One of the module-level categories (see module docstring).
    category: str
    #: Human-readable account with expected/actual values.
    message: str
    #: Simulation time at detection (-1.0 for post-run record checks).
    time_s: float = -1.0
    #: Socket index the violation is scoped to, if any.
    socket: Optional[int] = None
    #: Core index the violation is scoped to, if any.
    core: Optional[int] = None
    #: Set by classification: True when the run's fault config explains
    #: the violation, making it expected rather than a failure.
    expected: bool = False

    def classify(self, expected: bool) -> "Violation":
        return replace(self, expected=expected)

    def __str__(self) -> str:
        scope = ""
        if self.socket is not None:
            scope += f" socket={self.socket}"
        if self.core is not None:
            scope += f" core={self.core}"
        when = f" t={self.time_s:.6f}s" if self.time_s >= 0 else ""
        flag = " [expected]" if self.expected else ""
        return f"{self.invariant} ({self.category}){scope}{when}: {self.message}{flag}"


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one run: violations plus checker telemetry."""

    spec: "RunSpec"
    violations: tuple[Violation, ...] = ()
    #: Per-invariant count of *checks evaluated* (not failures) — proves
    #: the battery actually ran, so an empty violation list is evidence
    #: rather than silence.
    checks: dict[str, int] = field(default_factory=dict)
    #: Number of invariant-battery passes executed during the run.
    batteries: int = 0
    #: Number of node sync intervals the shadow ledgers integrated.
    syncs: int = 0
    #: Number of engine events observed.
    events: int = 0

    @property
    def unexpected(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if not v.expected)

    @property
    def expected_violations(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.expected)

    @property
    def ok(self) -> bool:
        """True when no violation is unexpected."""
        return not self.unexpected

    def summary_line(self) -> str:
        # Reports wrap any spec kind (run, sched, cosched); fall back
        # from label to the app field to the spec's own description.
        label = (
            self.spec.label
            or getattr(self.spec, "app", None)
            or self.spec.describe()
        )
        state = "ok" if self.ok else "FAIL"
        return (
            f"{label}: {state} — {self.batteries} batteries, "
            f"{sum(self.checks.values())} checks, "
            f"{len(self.unexpected)} unexpected / "
            f"{len(self.expected_violations)} expected violations"
        )


def merge_counts(into: dict[str, int], counts: Iterable[str]) -> None:
    """Tally invariant names into a counts dict (helper for the checker)."""
    for name in counts:
        into[name] = into.get(name, 0) + 1
