"""Post-run ledger checks over :class:`~repro.harness.record.MeasurementRecord`.

The runtime checker (:mod:`repro.validate.checker`) watches the model
while it runs; these checks audit the *books* afterwards: the harness
record must be internally consistent (exact float reconstruction of the
derived quantities, ordered decision traces, balanced throttle counters)
and the measured region must agree with simulator ground truth to within
RAPL quantisation — any further disagreement is either an injected
measurement fault (classified expected by the taxonomy) or a bug.

All checks are pure functions of the record, so they run identically in
workers, in tests and in the CLI sweep.
"""

from __future__ import annotations

from typing import Optional

from repro.config import MachineConfig, PAPER_MACHINE
from repro.harness.record import MeasurementRecord
from repro.measure.energy import SampleQuality
from repro.units import RAPL_ENERGY_UNIT_J
from repro.validate.violations import Violation

#: Measured-vs-truth per-socket energy tolerance, in RAPL ticks.  Each
#: region boundary quantises to one tick and the reader's reconciliation
#: can add a couple more; 16 ticks is ~0.25 mJ — far below any physically
#: meaningful disagreement.
_ENERGY_TOL_TICKS = 16

#: The controller's decision history is bounded; past the bound the
#: flip-count reconstruction would undercount, so it is skipped.
_DECISION_HISTORY_BOUND = 100_000


def check_record(
    record: MeasurementRecord,
    *,
    machine: MachineConfig = PAPER_MACHINE,
) -> list[Violation]:
    """Audit one record; returns unclassified violations (possibly empty)."""
    violations: list[Violation] = []

    def fail(invariant: str, category: str, message: str, **kw) -> None:
        violations.append(
            Violation(invariant=invariant, category=category, message=message, **kw)
        )

    run = record.run
    region = record.region

    # --- run-summary internal ledger -----------------------------------
    if run.elapsed_s < 0:
        fail("run-ledger", "ledger", f"negative elapsed time {run.elapsed_s!r}")
    if any(e < 0 for e in run.energy_j_sockets):
        fail("run-ledger", "ledger",
             f"negative socket energy {run.energy_j_sockets!r}")
    if run.avg_power_w != run.reconstructed_avg_power_w():
        fail(
            "run-power-ledger", "ledger",
            f"avg_power_w {run.avg_power_w!r} != energy/elapsed "
            f"{run.reconstructed_avg_power_w()!r}",
        )
    # The root task runs without passing through the scheduler's spawn
    # counter, so a completed run always accounts for exactly spawned + 1
    # completions.
    if run.tasks_completed != run.tasks_spawned + 1:
        fail(
            "run-task-ledger", "ledger",
            f"completed {run.tasks_completed} != spawned "
            f"{run.tasks_spawned} + 1 (root)",
        )
    if not (0 <= run.throttle_activations - run.throttle_deactivations <= 1):
        fail(
            "run-throttle-ledger", "ledger",
            f"unbalanced throttle counters: {run.throttle_activations} "
            f"activations vs {run.throttle_deactivations} deactivations",
        )
    tjmax = machine.thermal.tjmax_degc
    for s, temp in enumerate(run.final_temps_degc):
        if not (0.0 <= temp <= tjmax + 1e-9):
            fail(
                "run-temp-bounds", "ledger",
                f"final temperature {temp!r} degC outside [0, {tjmax!r}]",
                socket=s,
            )

    # --- region internal ledger ----------------------------------------
    total = sum(region.energy_j_sockets)
    expect_watts = (total / region.elapsed_s) if region.elapsed_s > 0 else 0.0
    if region.avg_watts != expect_watts:
        fail(
            "region-power-ledger", "ledger",
            f"avg_watts {region.avg_watts!r} != energy/elapsed {expect_watts!r}",
        )
    if region.end_s < region.start_s:
        fail(
            "region-time-ledger", "ledger",
            f"region ends before it starts: [{region.start_s!r}, {region.end_s!r}]",
        )

    # --- region vs ground truth ----------------------------------------
    if region.elapsed_s != run.elapsed_s:
        fail(
            "region-run-time", "ledger",
            f"region elapsed {region.elapsed_s!r} != run elapsed {run.elapsed_s!r}",
        )
    tol_j = _ENERGY_TOL_TICKS * RAPL_ENERGY_UNIT_J
    meter = record.spec.meter
    model_backend = record.meter_backend != "rapl"
    if model_backend:
        # A model backend is *estimating*, not reading the counter truth;
        # it is held to its declared error envelope instead of RAPL
        # quantisation.  The envelope is relative per socket, with the
        # quantisation floor added so near-zero windows don't divide away.
        envelope_frac = meter.envelope_frac if meter is not None else 0.25
        for s, (measured, truth) in enumerate(
            zip(region.energy_j_sockets, run.energy_j_sockets)
        ):
            bound = envelope_frac * abs(truth) + tol_j
            if abs(measured - truth) > bound:
                fail(
                    "meter-envelope", "measurement-energy",
                    f"{record.meter_backend} backend measured {measured!r} J "
                    f"vs ground truth {truth!r} J (diff "
                    f"{measured - truth:.6f} J > declared envelope "
                    f"{bound:.6f} J = {envelope_frac:.0%} + quantisation)",
                    socket=s,
                )
    else:
        for s, (measured, truth) in enumerate(
            zip(region.energy_j_sockets, run.energy_j_sockets)
        ):
            if abs(measured - truth) > tol_j:
                fail(
                    "measured-energy-truth", "measurement-energy",
                    f"measured {measured!r} J vs ground truth {truth!r} J "
                    f"(diff {measured - truth:.6f} J > {tol_j:.6f} J tolerance)",
                    socket=s,
                )

    # --- observer-overhead accounting ----------------------------------
    # The daemon derives solo-seconds as reads_charged * read_cost_s (one
    # product, no accumulation), so the reconstruction must match with
    # exact float equality; and a meter that charges nothing must leave
    # every overhead counter at zero.
    read_cost_s = meter.read_cost_s if meter is not None else 0.0
    if record.overhead_solo_s != record.overhead_reads_charged * read_cost_s:
        fail(
            "overhead-accounting", "ledger",
            f"overhead_solo_s {record.overhead_solo_s!r} != "
            f"{record.overhead_reads_charged} reads * {read_cost_s!r} s",
        )
    if record.overhead_reads_charged < 0 or record.overhead_reads_skipped < 0:
        fail(
            "overhead-accounting", "ledger",
            f"negative overhead read counters "
            f"({record.overhead_reads_charged}, {record.overhead_reads_skipped})",
        )
    if read_cost_s == 0.0 and (
        record.overhead_reads_charged or record.overhead_reads_skipped
        or record.overhead_solo_s
    ):
        fail(
            "overhead-accounting", "ledger",
            f"zero-cost meter charged overhead "
            f"(charged={record.overhead_reads_charged}, "
            f"skipped={record.overhead_reads_skipped}, "
            f"solo={record.overhead_solo_s!r})",
        )

    # --- sample quality ------------------------------------------------
    degraded = sum(
        count
        for quality, count in record.quality_counts.items()
        if quality is not SampleQuality.OK
    )
    if degraded > 0:
        fail(
            "sample-quality", "measurement-quality",
            f"{degraded} non-OK energy samples "
            f"({ {q.name: c for q, c in record.quality_counts.items()} })",
        )
    if record.late_ticks > 0 or record.missed_ticks > 0:
        fail(
            "daemon-cadence", "measurement-quality",
            f"daemon watchdog tripped: {record.late_ticks} late, "
            f"{record.missed_ticks} missed ticks",
        )

    # --- throttle decision trace ---------------------------------------
    violations.extend(check_decisions(record))
    return violations


def check_decisions(record: MeasurementRecord) -> list[Violation]:
    """Audit the throttle decision trace against the run counters."""
    violations: list[Violation] = []
    decisions = record.decisions
    run = record.run

    def fail(invariant: str, message: str) -> None:
        violations.append(
            Violation(invariant=invariant, category="ledger", message=message)
        )

    prev_time: Optional[float] = None
    flips_up = 0
    flag = False
    throttled_s = 0.0
    prev_flag = False
    for d in decisions:
        if prev_time is not None:
            if d.time_s < prev_time:
                fail(
                    "decision-order",
                    f"decision at t={d.time_s!r} before t={prev_time!r}",
                )
            if prev_flag:
                throttled_s += d.time_s - prev_time
        if d.throttle and not flag:
            flips_up += 1
        flag = d.throttle
        prev_time = d.time_s
        prev_flag = d.throttle
    if len(decisions) < _DECISION_HISTORY_BOUND:
        if record.throttled and run.throttle_activations != flips_up:
            fail(
                "decision-flip-ledger",
                f"{run.throttle_activations} scheduler activations != "
                f"{flips_up} off-to-on flips in the decision trace",
            )
        # time_throttled_s is the controller's fold over the same history;
        # recomputing it must reproduce the recorded value exactly.
        if record.time_throttled_s != throttled_s:
            fail(
                "throttled-time-ledger",
                f"time_throttled_s {record.time_throttled_s!r} != "
                f"recomputed {throttled_s!r}",
            )
    if record.time_throttled_s < 0 or (
        run.elapsed_s > 0 and record.time_throttled_s > run.elapsed_s + 0.2
    ):
        fail(
            "throttled-time-bounds",
            f"time_throttled_s {record.time_throttled_s!r} outside "
            f"[0, elapsed + 0.2 s]",
        )
    return violations
