"""Pluggable energy-metering backends and the observer-overhead model.

See :mod:`repro.metering.backends` for the backend protocol and the two
implementations (hardware RAPL path, APERF/MPERF software wattmeter);
:class:`repro.config.MeterConfig` selects a backend, sampling cadence and
per-read observer cost; :mod:`repro.experiments.metersweep` is the
attribution-error study built on top.
"""

from repro.metering.backends import (
    CounterModelBackend,
    MeterBackend,
    RaplBackend,
    estimate_socket_power_w,
    make_backend,
)

__all__ = [
    "MeterBackend",
    "RaplBackend",
    "CounterModelBackend",
    "estimate_socket_power_w",
    "make_backend",
]
