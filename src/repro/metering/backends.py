"""Pluggable metering backends behind the RCRdaemon's sampling loop.

The daemon's original energy path — one wrap-aware
:class:`~repro.measure.energy.EnergyReader` per socket polled every tick —
is one *meter* among several a real measurement stack could use.  This
module extracts that contract into :class:`MeterBackend` and provides two
implementations:

* :class:`RaplBackend` — the existing hardware-counter path, verbatim.
  It delegates to :class:`~repro.measure.energy.MultiSocketEnergyReader`
  with no arithmetic of its own, so a daemon built on it performs the
  exact same MSR reads in the exact same order as before the refactor;
  the golden-trace suite pins this bit-identity.

* :class:`CounterModelBackend` — a software wattmeter in the style of
  pTop/PowerAPI ("Dissecting the software-based measurement of CPU energy
  consumption", PAPERS.md): it never touches the energy register, instead
  reading each core's ``IA32_MPERF``/``IA32_APERF`` cycle counters and
  estimating socket power from a per-state model (idle / clocked / issue
  utilisation).  The model is *deliberately* simpler than the simulator's
  ground-truth :class:`~repro.hw.power.PowerModel`: it omits memory-stall
  power, bandwidth draw and leakage-vs-temperature, so its error is
  workload-dependent — near-exact on idle and compute-bound phases,
  biased on memory-bound ones — which is exactly the divergence the
  ``metersweep`` experiment quantifies.  Each backend declares an error
  envelope (:class:`~repro.config.MeterConfig.envelope_frac`) that the
  validate layer holds it to.

Fault interaction is asymmetric by construction: the injector's
:class:`~repro.faults.injector.FaultyMSRFile` perturbs only energy-
register and thermal reads, so ``flaky-msr`` profiles degrade the RAPL
backend while the counter model sails through (its APERF/MPERF reads are
clean) — while cadence faults (stall, jitter) hit both by shifting the
integration windows.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import METER_BACKENDS, PowerConfig
from repro.errors import MeasurementError
from repro.hw.msr import IA32_APERF, IA32_MPERF, MSRFile
from repro.hw.node import Node
from repro.measure.energy import (
    EnergySample,
    MultiSocketEnergyReader,
    SampleQuality,
)
from repro.units import joules_to_rapl_ticks, rapl_ticks_to_joules

__all__ = [
    "MeterBackend",
    "RaplBackend",
    "CounterModelBackend",
    "estimate_socket_power_w",
    "make_backend",
]


class MeterBackend:
    """Protocol for one node-wide energy meter.

    A backend owns whatever per-socket state its measurement needs and
    answers three questions the daemon asks every tick: *how much energy
    has socket s consumed so far* (:meth:`poll_sample`), *how many times
    has its counter wrapped* (:meth:`wraps`) and *how trustworthy have
    the samples been* (:meth:`quality_counts`).  All MSR traffic must go
    through the ``MSRFile`` the backend was constructed with — the daemon
    hands in its (possibly fault-wrapped) handle, so injected sensor
    faults reach exactly the reads a real tool would be exposed to.
    """

    #: Stable identifier, one of :data:`repro.config.METER_BACKENDS`.
    name: str = "?"

    def poll_sample(self, socket: int, window_s: "float | None") -> EnergySample:
        """Sample ``socket``'s cumulative energy.

        ``window_s`` is the elapsed time since the previous poll when the
        caller knows it (used for rate estimates / window integration), or
        ``None`` for an anchoring read whose delta is not meaningful.
        """
        raise NotImplementedError

    def wraps(self, socket: int) -> int:
        """Counter wraps observed on ``socket`` so far."""
        raise NotImplementedError

    def quality_counts(self) -> dict[SampleQuality, int]:
        """Aggregate sample-quality histogram across all sockets."""
        raise NotImplementedError


class RaplBackend(MeterBackend):
    """The hardware path: wrap-aware RAPL counter accumulation.

    Pure delegation to :class:`MultiSocketEnergyReader` — same reads,
    same order, same arithmetic as the pre-refactor daemon, which is what
    keeps default runs bit-identical to the pinned golden digests.
    """

    name = "rapl"

    def __init__(self, msr: MSRFile, sockets: int, *, retry_limit: int = 3) -> None:
        self._energy = MultiSocketEnergyReader(msr, sockets, retry_limit=retry_limit)

    @property
    def readers(self):  # noqa: ANN201 - convenience passthrough for tests
        return self._energy.readers

    def poll_sample(self, socket: int, window_s: "float | None") -> EnergySample:
        return self._energy.readers[socket].poll_sample(window_s)

    def wraps(self, socket: int) -> int:
        return self._energy.readers[socket].wraps

    def quality_counts(self) -> dict[SampleQuality, int]:
        totals: dict[SampleQuality, int] = {q: 0 for q in SampleQuality}
        for reader in self._energy.readers:
            for quality, count in reader.quality_counts.items():
                totals[quality] += count
        return totals


def estimate_socket_power_w(
    mperf_deltas: Sequence[float],
    aperf_deltas: Sequence[float],
    window_s: float,
    frequency_hz: float,
    power: PowerConfig,
) -> float:
    """Estimate one socket's average power over a window from its counters.

    Per core, ``MPERF`` ticks at the nominal rate whenever the core is in
    C0, so ``c0 = dmperf / (f * window)`` is the clocked fraction of the
    window; ``APERF`` additionally scales with the duty cycle, so
    ``issue = daperf / (f * window)`` is the effective issue utilisation
    (clock modulation shows up here, which is how the model sees
    throttling).  The per-state model is then

        idle_w * (1 - c0)  +  active_base_w * c0  +  cpu_w * issue

    summed over cores, plus constant uncore power.  Stall power, bandwidth
    draw and temperature-dependent leakage are intentionally absent — a
    software wattmeter built on utilisation counters cannot see them, and
    that blindness is the attribution error under study.

    Pure function of its arguments (no clamping state, no I/O) so the
    hypothesis suite can probe it directly: the result is non-negative and
    monotone non-decreasing in every counter delta.
    """
    if window_s <= 0:
        return 0.0
    cycles = frequency_hz * window_s
    total = power.uncore_w
    for dmperf, daperf in zip(mperf_deltas, aperf_deltas):
        c0 = min(1.0, max(0.0, dmperf / cycles))
        issue = min(c0, max(0.0, daperf / cycles))
        total += (
            power.core_idle_w * (1.0 - c0)
            + power.core_active_base_w * c0
            + power.core_cpu_w * issue
        )
    return total


class CounterModelBackend(MeterBackend):
    """Software wattmeter: APERF/MPERF utilisation × per-state power model.

    Every poll reads both cycle counters for every core of the socket
    (supervisor-level reads through the daemon's MSR handle), converts the
    deltas to utilisations over the window, prices them with
    :func:`estimate_socket_power_w`, and accumulates the window's energy
    *quantised to RAPL ticks* so the reported resolution matches what a
    RAPL-calibrated consumer expects.  Samples are always ``OK``: the
    model cannot fail a read the way the energy register does (the fault
    injector leaves APERF/MPERF alone), it can only be *wrong*, which is
    what the validate layer's error envelope measures.
    """

    name = "counter-model"

    def __init__(
        self,
        msr: MSRFile,
        socket_cores: Sequence[Sequence[int]],
        frequency_hz: float,
        power: PowerConfig,
    ) -> None:
        if not socket_cores:
            raise MeasurementError("counter-model backend needs at least one socket")
        self._msr = msr
        self._socket_cores = [list(cores) for cores in socket_cores]
        self._frequency_hz = frequency_hz
        self._power = power
        self._total_ticks = [0] * len(self._socket_cores)
        self.quality_histogram: dict[SampleQuality, int] = {
            q: 0 for q in SampleQuality
        }
        # Baseline counter snapshot, so the first windowed poll sees only
        # cycles accumulated after the backend (i.e. the daemon) started.
        self._prev_cycles = [
            [self._read_core_cycles(core) for core in cores]
            for cores in self._socket_cores
        ]

    def _read_core_cycles(self, core: int) -> tuple[int, int]:
        return (
            self._msr.read_core(core, IA32_MPERF, privileged=True),
            self._msr.read_core(core, IA32_APERF, privileged=True),
        )

    def poll_sample(self, socket: int, window_s: "float | None") -> EnergySample:
        cores = self._socket_cores[socket]
        now_cycles = [self._read_core_cycles(core) for core in cores]
        prev_cycles = self._prev_cycles[socket]
        self._prev_cycles[socket] = now_cycles
        delta_ticks = 0
        if window_s is not None and window_s > 0:
            mperf_deltas = [n[0] - p[0] for n, p in zip(now_cycles, prev_cycles)]
            aperf_deltas = [n[1] - p[1] for n, p in zip(now_cycles, prev_cycles)]
            power_w = estimate_socket_power_w(
                mperf_deltas, aperf_deltas, window_s, self._frequency_hz, self._power
            )
            delta_ticks = joules_to_rapl_ticks(power_w * window_s)
            self._total_ticks[socket] += delta_ticks
        self.quality_histogram[SampleQuality.OK] += 1
        return EnergySample(
            total_joules=rapl_ticks_to_joules(self._total_ticks[socket]),
            delta_ticks=delta_ticks,
            quality=SampleQuality.OK,
            retries=0,
            wraps=0,
        )

    def wraps(self, socket: int) -> int:
        return 0

    def quality_counts(self) -> dict[SampleQuality, int]:
        return dict(self.quality_histogram)


def make_backend(name: str, msr: MSRFile, node: Node) -> MeterBackend:
    """Build the named backend against ``node`` reading through ``msr``.

    ``msr`` is passed separately from ``node`` because the daemon may hand
    in a fault-wrapped view of ``node.msr``; the backend must use it for
    every read so injected sensor faults are visible to the meter.
    """
    if name == "rapl":
        return RaplBackend(msr, node.config.sockets)
    if name == "counter-model":
        return CounterModelBackend(
            msr,
            [
                list(node.topology.cores_in_socket(s))
                for s in range(node.config.sockets)
            ],
            node.config.frequency_hz,
            node.config.power,
        )
    raise MeasurementError(
        f"unknown meter backend {name!r}; one of {', '.join(METER_BACKENDS)}"
    )
