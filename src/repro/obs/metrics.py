"""Metrics registry: labelled Counter/Gauge/Histogram instruments.

The design goal is the same one :mod:`repro.metering` applies to power
measurement: *the observer must account for itself*.  Three rules follow.

1. **Recording never raises.**  Once an instrument is registered, ``inc``
   / ``set`` / ``observe`` on it are infallible for finite non-negative
   inputs; misuse (wrong label names, negative counter increments) raises
   :class:`~repro.errors.ObsError` because those are caller bugs, but no
   instrument call can fail because of registry state.

2. **Everything merges exactly.**  A snapshot is a pure value: counters
   sum, ``sum``-gauges sum, ``max``-gauges take the max, and histograms
   are :class:`~repro.sched.sketch.QuantileSketch` instances whose merge
   is exact and order-independent.  ``merge`` is therefore associative
   and commutative, so multi-process fan-in (one registry per worker,
   merged at the coordinator) reports the same percentiles as a single
   global registry would — bit for bit.

3. **The registry self-measures.**  A deterministic 1-in-
   :data:`SAMPLE_EVERY` sample of instrument operations is timed with
   ``perf_counter`` and extrapolated into observer-effect books
   (mirroring the charged/skipped accounting of ``repro.metering``),
   exported as ``obs_registry_*`` metrics so the cost of watching is
   itself visible on every dashboard.

Histograms reuse the scheduler's deterministic log-bucketed sketch, so
percentiles are reproducible and mergeable rather than sampled.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.errors import ObsError
from repro.sched.sketch import DEFAULT_REL_ERR, QuantileSketch

#: One in this many instrument operations is wall-timed to estimate the
#: registry's own overhead.  Power of two so the modulo is cheap, large
#: enough that the measurement does not dominate what it measures.
SAMPLE_EVERY = 64

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Instrument kinds (``kind`` field of snapshots).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Quantiles exported for histogram instruments.
EXPORT_QUANTILES = (50.0, 90.0, 99.0)


def _check_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name or ""):
        raise ObsError(f"invalid metric name {name!r}")
    return name


def _check_labels(names: Iterable[str]) -> tuple[str, ...]:
    out = tuple(names)
    seen: set[str] = set()
    for label in out:
        if not _LABEL_NAME_RE.match(label or ""):
            raise ObsError(f"invalid label name {label!r}")
        if label in seen:
            raise ObsError(f"duplicate label name {label!r}")
        seen.add(label)
    return out


class _Instrument:
    """Shared label plumbing for the three instrument kinds."""

    kind = "abstract"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: tuple[str, ...]) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = labels
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if len(labels) != len(self.label_names):
            raise ObsError(
                f"{self.name}: expected labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        try:
            return tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:
            raise ObsError(
                f"{self.name}: expected labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            ) from exc


class Counter(_Instrument):
    """Monotonically non-decreasing sum (events, bytes, errors)."""

    kind = COUNTER

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0.0:
            raise ObsError(f"{self.name}: counter increments must be >= 0")
        tick = self._registry._tick()
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount
        self._registry._tock(tick)

    def value(self, **labels: object) -> float:
        return float(self._series.get(self._key(labels), 0.0))  # type: ignore[arg-type]


class Gauge(_Instrument):
    """Point-in-time level (queue depth, in-flight jobs).

    ``agg`` picks the merge rule for multi-process fan-in: ``"sum"``
    (default — per-worker levels add) or ``"max"`` (high-water marks).
    Both are associative, which :func:`MetricsSnapshot.merge` requires.
    """

    kind = GAUGE

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: tuple[str, ...], agg: str = "sum") -> None:
        if agg not in ("sum", "max"):
            raise ObsError(f"{name}: gauge agg must be 'sum' or 'max'")
        super().__init__(registry, name, help, labels)
        self.agg = agg

    def set(self, value: float, **labels: object) -> None:
        tick = self._registry._tick()
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = float(value)
        self._registry._tock(tick)

    def value(self, **labels: object) -> float:
        return float(self._series.get(self._key(labels), 0.0))  # type: ignore[arg-type]


class Histogram(_Instrument):
    """Distribution instrument backed by a mergeable quantile sketch."""

    kind = HISTOGRAM

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: tuple[str, ...],
                 rel_err: float = DEFAULT_REL_ERR) -> None:
        super().__init__(registry, name, help, labels)
        self.rel_err = rel_err

    def observe(self, value: float, **labels: object) -> None:
        tick = self._registry._tick()
        key = self._key(labels)
        with self._registry._lock:
            sketch = self._series.get(key)
            if sketch is None:
                sketch = QuantileSketch(self.rel_err)
                self._series[key] = sketch
            sketch.add(max(0.0, float(value)))  # type: ignore[union-attr]
        self._registry._tock(tick)

    def sketch(self, **labels: object) -> Optional[QuantileSketch]:
        return self._series.get(self._key(labels))  # type: ignore[return-value]


@dataclass
class InstrumentSnapshot:
    """Frozen view of one instrument: metadata plus all label series."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    agg: str = "sum"
    rel_err: float = 0.0
    #: label-values tuple -> float (counter/gauge) or QuantileSketch.
    series: dict = field(default_factory=dict)

    def compatible(self, other: "InstrumentSnapshot") -> bool:
        return (self.name == other.name and self.kind == other.kind
                and self.label_names == other.label_names
                and self.agg == other.agg and self.rel_err == other.rel_err)


@dataclass
class MetricsSnapshot:
    """Atomic, picklable, exactly-mergeable view of a registry.

    A pure value: merging snapshots from N worker registries is
    associative and commutative, and histogram percentiles survive the
    merge exactly (the sketch merge is lossless).
    """

    instruments: dict[str, InstrumentSnapshot] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls()

    # -- merge ---------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Return a new snapshot combining both operands (associative)."""
        out = _copy_snapshot(self)
        for name, theirs in other.instruments.items():
            mine = out.instruments.get(name)
            if mine is None:
                out.instruments[name] = _copy_instrument(theirs)
                continue
            if not mine.compatible(theirs):
                raise ObsError(
                    f"cannot merge instrument {name!r}: conflicting "
                    f"kind/labels/agg/rel_err"
                )
            for key, value in theirs.series.items():
                if mine.kind == HISTOGRAM:
                    held = mine.series.get(key)
                    if held is None:
                        mine.series[key] = value.copy()
                    else:
                        held.merge(value)
                elif mine.kind == GAUGE and mine.agg == "max":
                    mine.series[key] = max(
                        mine.series.get(key, float("-inf")), value)
                else:
                    mine.series[key] = mine.series.get(key, 0.0) + value
        return out

    # -- identity ------------------------------------------------------
    def canonical(self) -> str:
        """Deterministic text form, for digesting and equality tests."""
        parts: list[str] = []
        for name in sorted(self.instruments):
            inst = self.instruments[name]
            parts.append(
                f"{name}|{inst.kind}|{','.join(inst.label_names)}"
                f"|{inst.agg}|{inst.rel_err!r}"
            )
            for key in sorted(inst.series):
                value = inst.series[key]
                text = (value.canonical() if isinstance(value, QuantileSketch)
                        else repr(float(value)))
                parts.append(f"  {key!r}={text}")
        return "\n".join(parts)

    # -- JSON ----------------------------------------------------------
    def to_json_obj(self) -> dict:
        """Plain-JSON form (wire format of the service ``metrics`` frame)."""
        out: dict = {"schema": 1, "instruments": []}
        for name in sorted(self.instruments):
            inst = self.instruments[name]
            series = []
            for key in sorted(inst.series):
                value = inst.series[key]
                entry: dict = {"labels": list(key)}
                if inst.kind == HISTOGRAM:
                    state = value.__getstate__()
                    entry["sketch"] = {
                        "rel_err": state["rel_err"],
                        "zeros": state["zeros"],
                        "count": state["count"],
                        "total": state["total"],
                        "min": state["min_value"],
                        "max": state["max_value"],
                        "buckets": {str(i): n
                                    for i, n in state["buckets"].items()},
                    }
                else:
                    entry["value"] = float(value)
                series.append(entry)
            out["instruments"].append({
                "name": inst.name, "kind": inst.kind, "help": inst.help,
                "labels": list(inst.label_names), "agg": inst.agg,
                "rel_err": inst.rel_err, "series": series,
            })
        return out

    @classmethod
    def from_json_obj(cls, obj: dict) -> "MetricsSnapshot":
        snap = cls()
        for raw in obj.get("instruments", []):
            inst = InstrumentSnapshot(
                name=raw["name"], kind=raw["kind"], help=raw.get("help", ""),
                label_names=tuple(raw.get("labels", [])),
                agg=raw.get("agg", "sum"), rel_err=raw.get("rel_err", 0.0),
            )
            for entry in raw.get("series", []):
                key = tuple(str(v) for v in entry.get("labels", []))
                if inst.kind == HISTOGRAM:
                    state = entry["sketch"]
                    sketch = QuantileSketch(state["rel_err"])
                    sketch.__setstate__({
                        "rel_err": state["rel_err"],
                        "zeros": state["zeros"],
                        "count": state["count"],
                        "total": state["total"],
                        "min_value": state["min"],
                        "max_value": state["max"],
                        "buckets": {int(i): n
                                    for i, n in state["buckets"].items()},
                    })
                    inst.series[key] = sketch
                else:
                    inst.series[key] = float(entry["value"])
            snap.instruments[inst.name] = inst
        return snap


def _copy_instrument(inst: InstrumentSnapshot) -> InstrumentSnapshot:
    series = {
        key: (value.copy() if isinstance(value, QuantileSketch)
              else float(value))
        for key, value in inst.series.items()
    }
    return InstrumentSnapshot(
        name=inst.name, kind=inst.kind, help=inst.help,
        label_names=inst.label_names, agg=inst.agg, rel_err=inst.rel_err,
        series=series,
    )


def _copy_snapshot(snap: MetricsSnapshot) -> MetricsSnapshot:
    return MetricsSnapshot(instruments={
        name: _copy_instrument(inst)
        for name, inst in snap.instruments.items()
    })


class MetricsRegistry:
    """Instrument factory + atomic snapshot source, thread-safe.

    Registration is idempotent: asking for an existing name with the
    same kind/labels/agg/rel_err returns the existing instrument (so
    library code can declare its instruments wherever it first needs
    them); a conflicting re-registration raises :class:`ObsError`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._clock = clock
        # Observer-effect books (mirrors repro.metering's accounting):
        # every op is counted, one in SAMPLE_EVERY is wall-timed, and
        # the measured mean is extrapolated over the untimed remainder.
        self.ops = 0
        self.timed_ops = 0
        self.measured_overhead_s = 0.0

    # -- self-measurement ---------------------------------------------
    def _tick(self) -> Optional[float]:
        self.ops += 1
        if self.ops % SAMPLE_EVERY == 1:
            return self._clock()
        return None

    def _tock(self, tick: Optional[float]) -> None:
        if tick is not None:
            self.timed_ops += 1
            self.measured_overhead_s += self._clock() - tick

    @property
    def estimated_overhead_s(self) -> float:
        """Measured sample cost extrapolated over every operation."""
        if not self.timed_ops:
            return 0.0
        return self.measured_overhead_s / self.timed_ops * self.ops

    # -- registration --------------------------------------------------
    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            held = self._instruments.get(instrument.name)
            if held is None:
                self._instruments[instrument.name] = instrument
                return instrument
            same = (held.kind == instrument.kind
                    and held.label_names == instrument.label_names
                    and getattr(held, "agg", "sum")
                    == getattr(instrument, "agg", "sum")
                    and getattr(held, "rel_err", 0.0)
                    == getattr(instrument, "rel_err", 0.0))
            if not same:
                raise ObsError(
                    f"instrument {instrument.name!r} already registered "
                    f"with a different kind/labels/agg/rel_err"
                )
            return held

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._register(Counter(
            self, _check_name(name), help, _check_labels(labels)))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = (),
              agg: str = "sum") -> Gauge:
        return self._register(Gauge(
            self, _check_name(name), help, _check_labels(labels), agg))  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  rel_err: float = DEFAULT_REL_ERR) -> Histogram:
        return self._register(Histogram(
            self, _check_name(name), help, _check_labels(labels), rel_err))  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    # -- snapshot ------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Atomic deep copy of every instrument, books included."""
        snap = MetricsSnapshot()
        with self._lock:
            for name, inst in self._instruments.items():
                frozen = InstrumentSnapshot(
                    name=inst.name, kind=inst.kind, help=inst.help,
                    label_names=inst.label_names,
                    agg=getattr(inst, "agg", "sum"),
                    rel_err=getattr(inst, "rel_err", 0.0),
                    series={
                        key: (value.copy()
                              if isinstance(value, QuantileSketch)
                              else float(value))
                        for key, value in inst._series.items()
                    },
                )
                snap.instruments[name] = frozen
            books = (
                ("obs_registry_ops_total", COUNTER,
                 "Instrument operations recorded by this registry.",
                 float(self.ops)),
                ("obs_registry_timed_ops_total", COUNTER,
                 "Operations wall-timed by the 1-in-%d overhead sampler."
                 % SAMPLE_EVERY, float(self.timed_ops)),
                ("obs_registry_overhead_seconds_total", COUNTER,
                 "Wall seconds directly measured on sampled operations.",
                 self.measured_overhead_s),
                ("obs_registry_overhead_estimated_seconds", GAUGE,
                 "Sampled overhead extrapolated over all operations.",
                 self.estimated_overhead_s),
            )
        for name, kind, help_text, value in books:
            snap.instruments[name] = InstrumentSnapshot(
                name=name, kind=kind, help=help_text, label_names=(),
                series={(): value},
            )
        return snap
