"""Exporters: Prometheus text exposition (and its inverse) for snapshots.

The exposition follows the Prometheus text format (version 0.0.4):

* one ``# HELP`` / ``# TYPE`` pair per metric family, families sorted by
  name, series within a family sorted by label values — the output is a
  deterministic function of the snapshot;
* HELP text escapes ``\\`` and newlines; label values additionally
  escape ``"``;
* counters and gauges export their float value directly; histograms
  export as a Prometheus *summary* family — ``{quantile="0.5"}`` /
  ``0.9`` / ``0.99`` series straight from the mergeable sketch, plus the
  exact ``_sum`` and ``_count`` children.

:func:`parse_prometheus` is the test-oriented inverse: it round-trips
everything the exposition can carry, which is what the hypothesis
conformance suite pins (snapshot -> exposition -> parse -> same
numbers).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ObsError
from repro.obs.metrics import (
    COUNTER,
    EXPORT_QUANTILES,
    GAUGE,
    HISTOGRAM,
    MetricsSnapshot,
)

#: Content-Type for HTTP scrape responses.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(names, values, extra=()) -> str:
    pairs = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in zip(names, values)]
    pairs.extend(f'{name}="{_escape_label_value(str(value))}"'
                 for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in Prometheus text-exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot.instruments):
        inst = snapshot.instruments[name]
        prom_type = "summary" if inst.kind == HISTOGRAM else inst.kind
        lines.append(f"# HELP {name} {_escape_help(inst.help)}")
        lines.append(f"# TYPE {name} {prom_type}")
        for key in sorted(inst.series):
            value = inst.series[key]
            if inst.kind in (COUNTER, GAUGE):
                labels = _labels_text(inst.label_names, key)
                lines.append(f"{name}{labels} {_format_value(value)}")
                continue
            for pct in EXPORT_QUANTILES:
                labels = _labels_text(
                    inst.label_names, key,
                    extra=(("quantile", repr(pct / 100.0)),))
                lines.append(
                    f"{name}{labels} {_format_value(value.quantile(pct))}")
            labels = _labels_text(inst.label_names, key)
            lines.append(f"{name}_sum{labels} {_format_value(value.total)}")
            lines.append(f"{name}_count{labels} {_format_value(value.count)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Parsing (round-trip conformance testing + `repro obs report --raw`)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label_value(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(body: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ObsError(f"unparseable label body {body!r}")
        labels.append((match.group("name"),
                       _unescape_label_value(match.group("value"))))
        pos = match.end()
    return tuple(labels)


@dataclass
class ParsedExposition:
    """Prometheus text parsed back into comparable pieces."""

    #: metric family name -> TYPE string.
    types: dict[str, str] = field(default_factory=dict)
    #: metric family name -> unescaped HELP string.
    helps: dict[str, str] = field(default_factory=dict)
    #: (sample name, sorted (label, value) pairs) -> float value.
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = \
        field(default_factory=dict)

    # ``name``/``self`` are positional-only so a label can carry either
    # word without colliding with the parameters.
    def value(self, name: str, /, **labels: str) -> float:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        if key not in self.samples:
            raise ObsError(f"no sample {name!r} with labels {labels!r}")
        return self.samples[key]

    def has(self, name: str, /, **labels: str) -> bool:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return key in self.samples


def parse_prometheus(text: str) -> ParsedExposition:
    """Parse text exposition (inverse of :func:`to_prometheus`)."""
    parsed = ParsedExposition()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            parsed.helps[name] = _unescape_label_value(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_text = rest.partition(" ")
            parsed.types[name] = type_text.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObsError(f"unparseable sample line {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        key = (match.group("name"), tuple(sorted(labels)))
        parsed.samples[key] = float(match.group("value"))
    return parsed
