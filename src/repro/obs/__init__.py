"""Unified observability: metrics, trace spans, and exporters.

The operational layer the rest of the stack reports into:

* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` with labelled
  Counter/Gauge/Histogram instruments; histograms reuse the scheduler's
  deterministic :class:`~repro.sched.sketch.QuantileSketch`, so
  percentiles are exact-mergeable across processes and bit-reproducible;
  the registry self-measures its own overhead (observer-effect books,
  mirroring :mod:`repro.metering`);
* :mod:`~repro.obs.trace` — parent-linked spans with wall clocks in the
  service and explicit sim-time stamps inside the simulator, exported
  as NDJSON or Chrome-trace JSON;
* :mod:`~repro.obs.export` — Prometheus text exposition (served by the
  service's ``metrics`` frame and optional HTTP scrape port) and its
  parsing inverse;
* :mod:`~repro.obs.report` — the ``repro obs report`` renderer.

Instrumented modules (service, harness executor, cluster sim) take the
registry/recorder as *optional duck-typed parameters* — they never
import this package, observability off is the default, and enabling it
cannot perturb simulated physics (golden digests stay bit-identical).
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    ParsedExposition,
    parse_prometheus,
    to_prometheus,
)
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    SAMPLE_EVERY,
    Counter,
    Gauge,
    Histogram,
    InstrumentSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.report import render_metrics_frame, render_snapshot
from repro.obs.trace import DEFAULT_MAX_SPANS, Span, SpanRecorder

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "SAMPLE_EVERY",
    "DEFAULT_MAX_SPANS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ParsedExposition",
    "Span",
    "SpanRecorder",
    "parse_prometheus",
    "to_prometheus",
    "render_metrics_frame",
    "render_snapshot",
]
