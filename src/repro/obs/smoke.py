"""End-to-end observability smoke: instruments to exposition to trace.

``python -m repro.obs.smoke`` (or ``make obs-smoke``) exercises the
whole observability path in a few seconds against throwaway state:

1. start a service, run a spec, restart a second service over the warm
   cache and re-submit — producing a real cache hit;
2. fetch the ``metrics`` frame and assert the Prometheus exposition
   parses and carries the headline series (queue depth, per-frame
   latency quantiles, crash counter, cache hits) plus the registry's
   own observer-overhead books;
3. render ``repro obs report`` output from the live frame;
4. run a tiny scheduled campaign with a sim-time tracer and JSON-load
   the Chrome trace it writes;
5. audit every snapshot with :func:`repro.validate.obs.check_snapshot`.

Exit code 0 and a single ``obs smoke OK`` line on success; any violated
invariant raises.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.harness.spec import RunSpec
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    SpanRecorder,
    parse_prometheus,
    render_metrics_frame,
)
from repro.sched.spec import SchedSpec
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig
from repro.service.testing import ServiceThread
from repro.validate.obs import check_snapshot

SPEC = RunSpec(app="nqueens", threads=2, scale=0.05, seed=7)


def _service_config(root: Path) -> ServiceConfig:
    return ServiceConfig(
        port=0,
        workers=1,
        queue_depth=8,
        timeout_s=60.0,
        cache_root=str(root / "cache"),
        journal_path=str(root / "journal.jsonl"),
    )


def _assert_no_violations(snapshot: MetricsSnapshot, where: str) -> None:
    violations = check_snapshot(snapshot)
    assert not violations, f"{where}: {[v.message for v in violations]}"


def run_smoke(root: Path) -> str:
    # -- service leg: execute once, then hit the cache from a restart --
    with ServiceThread(_service_config(root)) as svc:
        with ServiceClient(port=svc.port, name="obs-smoke") as client:
            done = client.submit_and_wait(SPEC, timeout_s=120.0)
            assert done["state"] == "done", done
    with ServiceThread(_service_config(root)) as svc:
        with ServiceClient(port=svc.port, name="obs-smoke") as client:
            done = client.submit_and_wait(SPEC, timeout_s=120.0)
            assert done["state"] == "done", done
            frame = client.metrics()

    exposition = frame["prometheus"]
    parsed = parse_prometheus(exposition)
    assert parsed.value("service_queue_depth") is not None
    assert parsed.value("service_frame_seconds", op="submit",
                        quantile="0.99") is not None
    assert parsed.value("service_events_total", event="crashes") == 0.0
    assert parsed.value("service_cache_requests_total", result="hit") >= 1.0
    assert parsed.value("obs_registry_ops_total") > 0.0
    assert parsed.types["service_frame_seconds"] == "summary"

    snapshot = MetricsSnapshot.from_json_obj(frame["snapshot"])
    _assert_no_violations(snapshot, "service snapshot")
    report = render_metrics_frame(frame)
    assert "queue depth" in report and "cache hit" in report, report
    n_series = len(parsed.samples)

    # -- sched leg: sim-time spans exported as a loadable Chrome trace --
    registry = MetricsRegistry()
    tracer = SpanRecorder(clock=lambda: 0.0)
    spec = SchedSpec(nodes=2, jobs=5, scale=0.3, seed=3)
    result = spec.execute(registry=registry, tracer=tracer)
    assert result.completed == 5, result
    trace_path = root / "sched-trace.json"
    events = tracer.write_chrome_trace(trace_path)
    assert events == 5, f"expected 5 job spans, wrote {events}"
    trace = json.loads(trace_path.read_text(encoding="utf-8"))
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 5 and all(e["dur"] > 0 for e in xs)
    _assert_no_violations(registry.snapshot(), "sched snapshot")

    return (f"obs smoke OK ({n_series} exposition series, "
            f"1 cache hit observed, {events} sched spans traced)")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        print(run_smoke(Path(tmp)), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
