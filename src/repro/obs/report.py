"""Human-readable rendering of a live service's metrics frame.

``repro obs report`` fetches the ``metrics`` frame from a running
:mod:`repro.service` instance and renders it for a terminal: headline
operational numbers first (queue depth, p99 frame latency, crash count,
cache hit ratio), then every counter/gauge series, every histogram with
its mergeable percentiles, the registry's own observer-overhead books,
and the longest recent spans.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricsSnapshot,
)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _series_name(inst, key) -> str:
    if not inst.label_names:
        return inst.name
    pairs = ",".join(f"{n}={v}" for n, v in zip(inst.label_names, key))
    return f"{inst.name}{{{pairs}}}"


def cache_hit_ratio(snapshot: MetricsSnapshot) -> Optional[float]:
    """hits / (hits + misses) from the service cache counters."""
    inst = snapshot.instruments.get("service_cache_requests_total")
    if inst is None:
        return None
    hits = misses = 0.0
    for key, value in inst.series.items():
        if key and key[0] == "hit":
            hits += value
        elif key and key[0] == "miss":
            misses += value
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def _headline(snapshot: MetricsSnapshot) -> list[str]:
    lines: list[str] = []
    queue = snapshot.instruments.get("service_queue_depth")
    if queue is not None and queue.series:
        lines.append(f"  queue depth        {_fmt(queue.series.get((), 0.0))}")
    frames = snapshot.instruments.get("service_frame_seconds")
    if frames is not None and frames.series:
        merged = None
        for sketch in frames.series.values():
            if merged is None:
                merged = sketch.copy()
            else:
                merged.merge(sketch)
        if merged is not None and merged.count:
            lines.append(
                f"  frame p99 latency  {merged.quantile(99.0) * 1e3:.3f} ms "
                f"(n={merged.count})")
    events = snapshot.instruments.get("service_events_total")
    if events is not None:
        crashes = events.series.get(("crashes",), 0.0)
        lines.append(f"  worker crashes     {_fmt(crashes)}")
    ratio = cache_hit_ratio(snapshot)
    if ratio is not None:
        lines.append(f"  cache hit ratio    {ratio:.1%}")
    return lines


def render_snapshot(snapshot: MetricsSnapshot) -> str:
    out: list[str] = []
    headline = _headline(snapshot)
    if headline:
        out.append("service headline")
        out.extend(headline)
        out.append("")
    books = [name for name in sorted(snapshot.instruments)
             if name.startswith("obs_registry_")]
    plain = [name for name in sorted(snapshot.instruments)
             if name not in books]
    for section, names in (("metrics", plain), ("observer overhead", books)):
        rows: list[str] = []
        for name in names:
            inst = snapshot.instruments[name]
            for key in sorted(inst.series):
                value = inst.series[key]
                label = _series_name(inst, key)
                if inst.kind in (COUNTER, GAUGE):
                    rows.append(f"  {label:<58s} {_fmt(value)}")
                elif inst.kind == HISTOGRAM:
                    rows.append(
                        f"  {label:<58s} n={value.count} "
                        f"mean={value.mean * 1e3:.3f}ms "
                        f"p50={value.quantile(50.0) * 1e3:.3f}ms "
                        f"p99={value.quantile(99.0) * 1e3:.3f}ms")
        if rows:
            out.append(section)
            out.extend(rows)
            out.append("")
    return "\n".join(out).rstrip() + "\n"


def render_spans(spans: list[dict], dropped: int = 0) -> str:
    """Render the ``spans`` list of a metrics frame (top spans)."""
    if not spans:
        return ""
    out = ["top spans"]
    for span in spans:
        dur = span.get("dur_s")
        dur_text = f"{dur * 1e3:.3f}ms" if dur is not None else "open"
        name = str(span.get("name", "?"))
        track = str(span.get("track", "main"))
        out.append(f"  {dur_text:>12s}  {name:<40s} [{track}]")
    if dropped:
        out.append(f"  ({dropped} older spans dropped from the buffer)")
    return "\n".join(out) + "\n"


def render_metrics_frame(frame: dict) -> str:
    """Render a full service ``metrics`` frame (snapshot + spans)."""
    snapshot = MetricsSnapshot.from_json_obj(frame.get("snapshot", {}))
    text = render_snapshot(snapshot)
    spans = render_spans(frame.get("spans", []),
                         int(frame.get("dropped_spans", 0)))
    if spans:
        text = text + "\n" + spans
    return text
