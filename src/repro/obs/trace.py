"""Parent-linked trace spans with pluggable clocks.

One recorder serves two very different time bases:

* **wall clocks** — the service and harness pass nothing and get
  ``perf_counter`` timestamps;
* **sim clocks** — the simulator never reads a wall clock for span
  timestamps (that would leak nondeterminism into anything derived from
  the trace); instead it passes explicit ``at=engine.now`` values to
  :meth:`SpanRecorder.start` / :meth:`SpanRecorder.finish`.

Nesting uses a :class:`contextvars.ContextVar`, so the ``span()``
context manager parents correctly across threads *and* across ``await``
boundaries in the asyncio service.  Finished spans land in a bounded
drop-oldest buffer (the same backpressure rule as the service's stream
fan-out) with an explicit ``dropped`` counter — lost spans are visible,
never silent.

Export formats: NDJSON (one span per line, grep-able) and the Chrome
trace-event JSON that ``chrome://tracing`` / Perfetto load directly.
"""

from __future__ import annotations

import contextvars
import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Default finished-span buffer size (drop-oldest beyond this).
DEFAULT_MAX_SPANS = 100_000

_current_span: contextvars.ContextVar[Optional["Span"]] = \
    contextvars.ContextVar("repro_obs_current_span", default=None)


@dataclass
class Span:
    """One timed operation; ``parent_id`` links the causality tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    track: str = "main"
    attrs: dict = field(default_factory=dict)
    end_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_json_obj(self) -> dict:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "dur_s": self.duration_s if self.end_s is not None else None,
            "attrs": _json_safe(self.attrs),
        }


def _json_safe(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


class SpanRecorder:
    """Collects finished spans; hands out ids; bounds its own memory."""

    def __init__(self, clock=None, *, max_spans: int = DEFAULT_MAX_SPANS):
        self._clock = clock if clock is not None else time.perf_counter
        self.max_spans = max_spans
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self.dropped = 0
        self.started = 0
        self._next_id = 1

    def now(self) -> float:
        return self._clock()

    # -- explicit start/finish (async + sim-time callers) --------------
    def start(self, name: str, *, parent: Optional[Span] = None,
              at: Optional[float] = None, track: str = "main",
              **attrs: object) -> Span:
        if parent is None:
            parent = _current_span.get()
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_s=self._clock() if at is None else float(at),
            track=track,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.started += 1
        return span

    def finish(self, span: Span, *, at: Optional[float] = None,
               **attrs: object) -> Span:
        if span.end_s is not None:
            return span
        span.end_s = self._clock() if at is None else float(at)
        if attrs:
            span.attrs.update(attrs)
        if len(self.spans) == self.max_spans:
            self.dropped += 1  # deque evicts the oldest span below
        self.spans.append(span)
        return span

    # -- context-manager form (sync code paths) ------------------------
    @contextmanager
    def span(self, name: str, *, track: str = "main",
             **attrs: object) -> Iterator[Span]:
        opened = self.start(name, track=track, **attrs)
        token = _current_span.set(opened)
        try:
            yield opened
        finally:
            _current_span.reset(token)
            self.finish(opened)

    # -- queries -------------------------------------------------------
    def top(self, n: int = 10) -> list[Span]:
        """The ``n`` longest finished spans, longest first."""
        return sorted(self.spans, key=lambda s: (-s.duration_s, s.span_id))[:n]

    # -- export --------------------------------------------------------
    def to_ndjson_lines(self) -> list[str]:
        return [json.dumps(span.to_json_obj(), sort_keys=True)
                for span in self.spans]

    def write_ndjson(self, path) -> int:
        lines = self.to_ndjson_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON (``ph:"X"`` complete events, µs)."""
        tids: dict[str, int] = {}
        events: list[dict] = []
        for span in self.spans:
            tid = tids.setdefault(span.track, len(tids))
            args = _json_safe(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": max(0.0, span.duration_s) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": args,
            })
        meta = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": track}}
            for track, tid in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        return {"traceEvents": meta + events,
                "displayTimeUnit": "ms",
                "otherData": {"dropped_spans": self.dropped}}

    def write_chrome_trace(self, path) -> int:
        trace = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, sort_keys=True)
        return sum(1 for ev in trace["traceEvents"] if ev["ph"] == "X")
