"""Lightweight task (qthread) state.

A task wraps a generator plus the bookkeeping the scheduler needs:
parent/child links for taskwait, a resume value for the generator send
channel, the shepherd it last ran on (locality hint for re-enqueueing),
and completion listeners (used by the runtime for the root task and by
FEB-free joins).

Unlike heavyweight pthreads, tasks have no identity beyond this object —
matching the Qthreads design point of small context, no per-thread signal
state, no preemption (Section III of the paper).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional

from repro.errors import SchedulerError
from repro.qthreads.api import TaskGen

_task_ids = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Task:
    """One qthread: a generator plus scheduler bookkeeping."""

    __slots__ = (
        "tid",
        "gen",
        "parent",
        "label",
        "state",
        "pending_children",
        "waiting_children",
        "resume_value",
        "resume_exc",
        "result",
        "shepherd_hint",
        "listeners",
        "children_spawned",
    )

    def __init__(
        self,
        gen: TaskGen,
        parent: Optional["Task"] = None,
        label: str = "",
    ) -> None:
        self.tid: int = next(_task_ids)
        self.gen = gen
        self.parent = parent
        self.label = label
        self.state = TaskState.CREATED
        #: Direct children not yet completed.
        self.pending_children = 0
        #: True while blocked in a taskwait.
        self.waiting_children = False
        #: Value to send into the generator at next resume.
        self.resume_value: Any = None
        #: Exception to throw into the generator at next resume.
        self.resume_exc: Optional[BaseException] = None
        #: Return value of the generator once DONE.
        self.result: Any = None
        #: Shepherd the task last ran on (re-enqueue locality).
        self.shepherd_hint: int = 0
        #: Callbacks fired when the task completes.
        self.listeners: list[Callable[["Task"], None]] = []
        #: Total children ever spawned (stats/tests).
        self.children_spawned = 0

    @property
    def done(self) -> bool:
        return self.state is TaskState.DONE

    def add_listener(self, callback: Callable[["Task"], None]) -> None:
        """Register a completion callback (fires immediately if DONE)."""
        if self.state is TaskState.DONE:
            callback(self)
        else:
            self.listeners.append(callback)

    def mark_done(self, result: Any) -> None:
        """Transition to DONE and fire listeners.  Called by the worker."""
        if self.state is TaskState.DONE:
            raise SchedulerError(f"task {self.tid} completed twice")
        self.state = TaskState.DONE
        self.result = result
        listeners, self.listeners = self.listeners, []
        for callback in listeners:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = self.label or f"task{self.tid}"
        return f"Task({name}, {self.state.value}, children={self.pending_children})"
