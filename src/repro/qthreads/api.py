"""Operations a task generator may yield to the runtime.

A *qthread* in this runtime is a Python generator.  It communicates with
the scheduler by yielding operation objects and receives results via the
generator ``send`` channel::

    def fib(n, depth, profile):
        if n < 2 or depth >= CUTOFF:
            yield Work(profile.leaf_seconds(n), mem_fraction=0.1)
            return fib_value(n)
        a = yield Spawn(fib(n - 1, depth + 1, profile))
        b = yield Spawn(fib(n - 2, depth + 1, profile))
        yield Taskwait()
        return a.result + b.result

Yielding a bare :class:`~repro.hw.core.Segment` is equivalent to yielding
``Compute(segment)``.

This mirrors the paper's stack: OpenMP directives are outlined by
ROSE/XOMP into calls that create qthreads; here the OpenMP layer
(:mod:`repro.openmp`) generates these same operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.hw.core import Segment
from repro.units import NOMINAL_FREQUENCY_HZ

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qthreads.feb import Feb
    from repro.qthreads.task import Task

#: Generator type for task bodies.
TaskGen = Generator[Any, Any, Any]


def Work(
    solo_seconds: float,
    mem_fraction: float = 0.0,
    power_scale: float = 1.0,
    contention_exponent: Optional[float] = None,
    coherence_penalty: float = 0.0,
    tag: str = "",
) -> Segment:
    """Construct a work segment (sugar over :class:`repro.hw.core.Segment`)."""
    return Segment(
        solo_seconds=solo_seconds,
        mem_fraction=mem_fraction,
        power_scale=power_scale,
        contention_exponent=contention_exponent,
        coherence_penalty=coherence_penalty,
        tag=tag,
    )


def work_from_ops(
    cpu_cycles: float,
    mem_refs: float,
    *,
    frequency_hz: float = NOMINAL_FREQUENCY_HZ,
    mem_latency_s: float = 80e-9,
    mlp: float = 10.0,
    power_scale: float = 1.0,
    tag: str = "",
) -> Segment:
    """Build a segment from instruction/memory-operation counts.

    Solo time is ``cpu_cycles / f + mem_refs * L0 / mlp``; the memory
    fraction is the memory share of that time.  Useful when an application
    reasons in operation counts rather than seconds.
    """
    cpu_s = cpu_cycles / frequency_hz
    mem_s = mem_refs * mem_latency_s / mlp
    total = cpu_s + mem_s
    if total <= 0.0:
        return Segment(0.0, 0.0, power_scale, tag)
    return Segment(total, mem_s / total, power_scale, tag)


@dataclass(frozen=True)
class Compute:
    """Execute a segment on the worker's core; resumes when it completes."""

    segment: Segment


@dataclass(frozen=True)
class Spawn:
    """Create a child task from a generator; sends back its Task handle.

    The child is pushed onto the spawning worker's shepherd queue (LIFO),
    costing ``spawn_overhead_cycles`` on the spawning core.
    """

    gen: TaskGen
    label: str = ""


@dataclass(frozen=True)
class Taskwait:
    """Block until all direct children spawned so far have completed."""


@dataclass(frozen=True)
class YieldTask:
    """Cooperatively yield: requeue this task and let the worker seek."""


@dataclass(frozen=True)
class RegionBoundary:
    """Signal a parallel region/loop termination to the scheduler.

    One of the paper's four spin-exit conditions: spinning workers are
    woken to re-check the throttle gate.  The OpenMP layer emits this at
    the end of every parallel loop and region.
    """

    kind: str = "loop"


@dataclass(frozen=True)
class FebWriteEF:
    """qthread_writeEF: wait until empty, write value, mark full."""

    feb: "Feb"
    value: Any = None


@dataclass(frozen=True)
class FebWriteF:
    """qthread_fill/writeF: write value and mark full regardless of state."""

    feb: "Feb"
    value: Any = None


@dataclass(frozen=True)
class FebReadFF:
    """qthread_readFF: wait until full, send back the value, leave full."""

    feb: "Feb"


@dataclass(frozen=True)
class FebReadFE:
    """qthread_readFE: wait until full, send back the value, mark empty."""

    feb: "Feb"


#: Union of operation types for isinstance dispatch in the worker.
TaskOp = (
    Compute,
    Spawn,
    Taskwait,
    YieldTask,
    RegionBoundary,
    FebWriteEF,
    FebWriteF,
    FebReadFF,
    FebReadFE,
)
