"""Worker pthreads: one per simulated core, pinned.

A worker drives task generators: it pops a task from its shepherd's LIFO
queue (stealing FIFO from other shepherds when empty), advances the
generator, and translates yielded operations into machine actions —
work segments assigned to its core, child spawns, blocking on taskwait or
FEBs.

Runtime overheads (spawn, steal, queue operations) are accounted in
cycles and folded into the next work segment the worker issues, so they
cost simulated time and energy on the core that incurred them without
doubling the event count.

The MAESTRO throttle path (Section IV): when a worker looks for new work
while throttling is active and its shepherd is over its limit, it enters
a spin loop — the core is clocked but idle, duty-cycled down to 1/32 via
an ``IA32_CLOCK_MODULATION`` MSR write (which takes effect after the
modelled actuation latency, so a freshly-throttled core briefly spins at
full power, exactly as real hardware does).  It leaves the spin loop on
throttle deactivation, parallel region/loop termination, or application
completion, re-checking the throttle condition each time.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import SchedulerError
from repro.hw.core import Segment
from repro.hw.msr import IA32_CLOCK_MODULATION, encode_clock_modulation
from repro.qthreads.api import (
    Compute,
    FebReadFE,
    FebReadFF,
    FebWriteEF,
    FebWriteF,
    RegionBoundary,
    Spawn,
    Taskwait,
    YieldTask,
)
from repro.qthreads.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qthreads.scheduler import Scheduler
    from repro.qthreads.shepherd import Shepherd

#: Runtime-bookkeeping segments touch queue/task metadata: mostly cache
#: traffic, modelled as mildly memory-bound work.
_OVERHEAD_MEM_FRACTION = 0.2

#: Pending overhead below this is carried forward rather than flushed as
#: its own segment when the worker idles (avoids picosecond segments).
_FLUSH_THRESHOLD_S = 1e-7


class WorkerState(enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    SPINNING = "spinning"


class Worker:
    """One worker pthread pinned to one simulated core."""

    def __init__(self, core_index: int, shepherd: "Shepherd", scheduler: "Scheduler") -> None:
        self.core_index = core_index
        self.shepherd = shepherd
        self.scheduler = scheduler
        self.state = WorkerState.IDLE
        self.current: Optional[Task] = None
        #: Accumulated runtime overhead not yet charged to the core, s.
        self.pending_overhead_s = 0.0
        # -- stats ------------------------------------------------------
        self.tasks_run = 0
        self.segments_issued = 0
        self.steals = 0
        self.spin_entries = 0

    # ------------------------------------------------------------------
    # overhead accounting
    # ------------------------------------------------------------------
    def charge_cycles(self, cycles: float) -> None:
        """Accumulate runtime overhead to be folded into the next segment."""
        self.pending_overhead_s += cycles / self.scheduler.frequency_hz

    def _merge_overhead(self, segment: Segment) -> Segment:
        """Fold pending overhead into a work segment (weighted mem mix)."""
        ovh = self.pending_overhead_s
        if ovh <= 0.0:
            return segment
        self.pending_overhead_s = 0.0
        total = segment.solo_seconds + ovh
        if total <= 0.0:
            return segment
        mem = (
            segment.solo_seconds * segment.mem_fraction
            + ovh * _OVERHEAD_MEM_FRACTION
        ) / total
        return Segment(
            solo_seconds=total,
            mem_fraction=mem,
            power_scale=segment.power_scale,
            contention_exponent=segment.contention_exponent,
            coherence_penalty=segment.coherence_penalty,
            tag=segment.tag,
        )

    # ------------------------------------------------------------------
    # the seek / run / advance machinery
    # ------------------------------------------------------------------
    def seek(self) -> None:
        """Look for work: the paper's 'thread initiation point'.

        Order of checks mirrors the MAESTRO design: (1) throttle gate,
        (2) flush outstanding bookkeeping work, (3) local pop, (4) steal,
        (5) idle.
        """
        if self.state is not WorkerState.IDLE and self.current is not None:
            raise SchedulerError(f"worker {self.core_index} sought work while running")

        sched = self.scheduler
        self.shepherd.idle_workers.discard(self)

        # (1) throttle gate
        if sched.throttle_active and self.shepherd.over_limit:
            self._enter_spin()
            return

        # (2) flush accumulated overhead before parking
        if self.pending_overhead_s >= _FLUSH_THRESHOLD_S:
            seg = self._merge_overhead(Segment(0.0, 0.0, tag="overhead-flush"))
            self.state = WorkerState.RUNNING
            self.segments_issued += 1
            sched.node.assign(self.core_index, seg, on_complete=self._on_segment_done)
            return

        # (3) local LIFO pop
        task = self.shepherd.pop_local()
        if task is not None:
            self.charge_cycles(sched.overhead.queue_op_cycles)
            self._run_task(task)
            return

        # (4) steal, FIFO from a random victim order
        task = sched.steal_for(self)
        if task is not None:
            self.steals += 1
            self.charge_cycles(sched.overhead.steal_overhead_cycles)
            self._run_task(task)
            return

        # (5) idle
        self.state = WorkerState.IDLE
        self.current = None
        self.shepherd.idle_workers.add(self)

    def _run_task(self, task: Task) -> None:
        task.state = TaskState.RUNNING
        task.shepherd_hint = self.shepherd.sid
        self.current = task
        self.state = WorkerState.RUNNING
        self.tasks_run += 1
        value, task.resume_value = task.resume_value, None
        self._advance(value)

    def _on_segment_done(self) -> None:
        """Node callback: the core finished its segment."""
        if self.current is None:
            # Overhead flush completed; look for real work again.
            self.state = WorkerState.IDLE
            self.seek()
            return
        self._advance(None)

    def _advance(self, value: Any) -> None:
        """Drive the current task's generator until it blocks or computes."""
        task = self.current
        assert task is not None
        sched = self.scheduler
        while True:
            try:
                op = task.gen.send(value)
            except StopIteration as stop:
                self._finish_task(task, stop.value)
                return
            value = None

            if isinstance(op, Segment):
                op = Compute(op)

            if isinstance(op, Compute):
                seg = self._merge_overhead(op.segment)
                self.segments_issued += 1
                sched.node.assign(self.core_index, seg, on_complete=self._on_segment_done)
                return

            if isinstance(op, Spawn):
                child = Task(op.gen, parent=task, label=op.label)
                task.pending_children += 1
                task.children_spawned += 1
                self.charge_cycles(sched.overhead.spawn_overhead_cycles)
                sched.spawn_count += 1
                sched.enqueue(child, self.shepherd.sid)
                value = child
                continue

            if isinstance(op, Taskwait):
                if task.pending_children > 0:
                    task.state = TaskState.BLOCKED
                    task.waiting_children = True
                    self._park_and_seek()
                    return
                continue

            if isinstance(op, RegionBoundary):
                sched.wake_spinners()
                continue

            if isinstance(op, YieldTask):
                task.state = TaskState.QUEUED
                self.charge_cycles(sched.overhead.queue_op_cycles)
                # Behind the local work, or a LIFO pop hands it right back.
                sched.enqueue(task, self.shepherd.sid, cold=True)
                self._park_and_seek()
                return

            if isinstance(op, FebWriteF):
                op.feb.try_write(op.value, require_empty=False)
                sched.feb_settle(op.feb)
                continue

            if isinstance(op, FebWriteEF):
                if op.feb.try_write(op.value, require_empty=True):
                    sched.feb_settle(op.feb)
                    continue
                task.state = TaskState.BLOCKED
                op.feb.waiting_writers.append((task, op.value))
                self._park_and_seek()
                return

            if isinstance(op, (FebReadFF, FebReadFE)):
                consume = isinstance(op, FebReadFE)
                ok, feb_value = op.feb.try_read(consume=consume)
                if ok:
                    if consume:
                        sched.feb_settle(op.feb)
                    value = feb_value
                    continue
                task.state = TaskState.BLOCKED
                op.feb.waiting_readers.append((task, consume))
                self._park_and_seek()
                return

            raise SchedulerError(f"task {task.tid} yielded unknown operation {op!r}")

    def _park_and_seek(self) -> None:
        """Detach from the current (blocked/requeued) task and find more work."""
        self.current = None
        self.state = WorkerState.IDLE
        self.seek()

    def _finish_task(self, task: Task, result: Any) -> None:
        sched = self.scheduler
        sched.completed_count += 1
        self.charge_cycles(sched.overhead.queue_op_cycles)
        parent = task.parent
        task.mark_done(result)
        if parent is not None:
            parent.pending_children -= 1
            if parent.pending_children == 0 and parent.waiting_children:
                parent.waiting_children = False
                parent.state = TaskState.QUEUED
                sched.enqueue(parent, parent.shepherd_hint)
        self._park_and_seek()

    # ------------------------------------------------------------------
    # MAESTRO spin loop
    # ------------------------------------------------------------------
    def _enter_spin(self) -> None:
        sched = self.scheduler
        self.state = WorkerState.SPINNING
        self.current = None
        self.shepherd.spinning_workers.add(self)
        self.spin_entries += 1
        sched.spin_entries += 1
        # Duty-cycle the core down via its clock-modulation MSR.  The node
        # models the actuation latency, so the core spins at full power
        # for ~250 memory operations before the modulation takes effect.
        sched.node.msr.write_core(
            self.core_index,
            IA32_CLOCK_MODULATION,
            encode_clock_modulation(sched.spin_duty),
            privileged=True,
        )
        sched.node.set_spin(self.core_index)
        self.charge_cycles(sched.overhead.queue_op_cycles)

    def wake_from_spin(self) -> None:
        """Exit the spin loop (throttle off / region end / app end).

        Restores full duty via the MSR (again with actuation latency — the
        first post-spin work briefly runs modulated) and re-enters the
        seek path, which may legitimately re-throttle the worker if the
        flag is still set and the shepherd remains over its limit.
        """
        if self.state is not WorkerState.SPINNING:
            return
        sched = self.scheduler
        self.shepherd.spinning_workers.discard(self)
        sched.node.msr.write_core(
            self.core_index,
            IA32_CLOCK_MODULATION,
            encode_clock_modulation(1.0),
            privileged=True,
        )
        sched.node.set_idle(self.core_index)
        self.state = WorkerState.IDLE
        self.seek()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Worker(core={self.core_index}, {self.state.value}, task={self.current})"
