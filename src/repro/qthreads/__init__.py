"""A Qthreads-like lightweight tasking runtime, co-simulated with the node.

Mirrors the structure of the Qthreads library the paper builds on
(Wheeler et al. [2]) with the MAESTRO extensions (Porterfield et al. [8]):

* **qthreads** (:class:`~repro.qthreads.task.Task`) — lightweight tasks
  written as Python generators that yield work segments and runtime
  operations; the smallest schedulable unit of work (a set of loop
  iterations or an OpenMP task);
* **worker pthreads** (:class:`~repro.qthreads.worker.Worker`) — one per
  simulated core, pinned, driving task generators;
* **shepherds** (:class:`~repro.qthreads.shepherd.Shepherd`) — locality
  domains (one per socket/L3 by default) owning LIFO work queues, with
  FIFO work stealing between shepherds (the Sherwood hierarchical
  scheduler [1]);
* **FEB** (:mod:`repro.qthreads.feb`) — full/empty-bit synchronisation;
* **throttling hooks** — shepherd-local active-thread limits and the
  spin-loop state used by the MAESTRO throttle controller (Section IV).
"""

from repro.qthreads.api import (
    Compute,
    FebReadFE,
    FebReadFF,
    FebWriteEF,
    FebWriteF,
    RegionBoundary,
    Spawn,
    Taskwait,
    Work,
    YieldTask,
)
from repro.qthreads.sync import Barrier, Future
from repro.qthreads.feb import Feb
from repro.qthreads.runtime import Runtime, RunResult
from repro.qthreads.scheduler import Scheduler
from repro.qthreads.shepherd import Shepherd
from repro.qthreads.task import Task, TaskState
from repro.qthreads.worker import Worker

__all__ = [
    "Barrier",
    "Compute",
    "Feb",
    "Future",
    "RegionBoundary",
    "FebReadFE",
    "FebReadFF",
    "FebWriteEF",
    "FebWriteF",
    "RunResult",
    "Runtime",
    "Scheduler",
    "Shepherd",
    "Spawn",
    "Task",
    "TaskState",
    "Taskwait",
    "Work",
    "Worker",
    "YieldTask",
]
