"""Shepherds: locality domains of the hierarchical scheduler.

A shepherd groups the workers that share a last-level cache and local
memory (by default one shepherd per socket, matching the Sherwood
configuration used in the paper).  Each shepherd owns:

* a LIFO work queue with FIFO stealing (:mod:`repro.qthreads.queues`);
* the set of idle workers available for wake-up;
* the MAESTRO throttling state: a counter of active (non-spinning)
  workers and a shepherd-local throttling limit.  "When a worker thread
  looks for work ..., if the active thread count for this shepherd is
  greater than the shepherd-local throttling limit, then that worker
  thread is placed in a spin loop" (Section IV).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.qthreads.queues import WorkQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qthreads.task import Task
    from repro.qthreads.worker import Worker


class Shepherd:
    """One locality domain: queue + workers + throttle state."""

    def __init__(self, sid: int, socket: int) -> None:
        self.sid = sid
        self.socket = socket
        self.queue = WorkQueue()
        self.workers: list["Worker"] = []
        #: Workers currently parked with nothing to do.
        self.idle_workers: set["Worker"] = set()
        #: Workers currently in the throttled spin loop.
        self.spinning_workers: set["Worker"] = set()
        #: Max active workers while throttling is engaged (set by the
        #: throttle controller; ignored while throttling is inactive).
        self.throttle_limit: int = 0

    def attach(self, worker: "Worker") -> None:
        """Register a worker with this shepherd (wiring, at startup)."""
        self.workers.append(worker)
        self.throttle_limit = len(self.workers)

    @property
    def active_count(self) -> int:
        """Workers not in the spin loop (the paper's 'active' counter)."""
        return len(self.workers) - len(self.spinning_workers)

    @property
    def over_limit(self) -> bool:
        """True when more workers are active than the throttle limit allows."""
        return self.active_count > self.throttle_limit

    def enqueue(self, task: "Task", *, cold: bool = False) -> None:
        """Push a task onto this shepherd's queue (hot end by default)."""
        task.shepherd_hint = self.sid
        if cold:
            self.queue.push_cold(task)
        else:
            self.queue.push(task)

    def pop_local(self) -> Optional["Task"]:
        return self.queue.pop_local()

    def pop_steal(self) -> Optional["Task"]:
        return self.queue.pop_steal()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Shepherd({self.sid}, socket={self.socket}, queue={len(self.queue)}, "
            f"idle={len(self.idle_workers)}, spin={len(self.spinning_workers)})"
        )
