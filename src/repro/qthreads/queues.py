"""Shepherd work queues.

The Sherwood scheduler [1] gives each shepherd a LIFO queue shared by the
workers of that locality domain: LIFO execution of freshly-spawned tasks
exploits constructive cache sharing (the child's working set is hot in the
cache the parent just touched), while *steals take the oldest task* (FIFO
end), which tends to grab the largest untouched subtree and minimises
steal frequency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qthreads.task import Task


class WorkQueue:
    """LIFO local queue with FIFO stealing, as in the Sherwood scheduler."""

    __slots__ = ("_deque", "pushes", "pops", "steals_out")

    def __init__(self) -> None:
        self._deque: Deque["Task"] = deque()
        self.pushes = 0
        self.pops = 0
        self.steals_out = 0

    def __len__(self) -> int:
        return len(self._deque)

    @property
    def empty(self) -> bool:
        return not self._deque

    def push(self, task: "Task") -> None:
        """Push a task at the hot (LIFO) end."""
        self._deque.append(task)
        self.pushes += 1

    def push_cold(self, task: "Task") -> None:
        """Push a task at the cold (FIFO) end.

        Used for cooperatively-yielding tasks: a yielder must go behind
        the local work or a LIFO pop would hand it straight back.
        """
        self._deque.appendleft(task)
        self.pushes += 1

    def pop_local(self) -> Optional["Task"]:
        """Pop from the hot end — the queue's own workers call this."""
        if not self._deque:
            return None
        self.pops += 1
        return self._deque.pop()

    def pop_steal(self) -> Optional["Task"]:
        """Pop from the cold (FIFO) end — thieves call this."""
        if not self._deque:
            return None
        self.steals_out += 1
        return self._deque.popleft()
