"""Higher-level synchronisation built on FEBs.

Qthreads composes its synchronisation out of full/empty bits; we do the
same.  Only the pieces the OpenMP layer and tests need are provided:

* :class:`Barrier` — single-generation barrier for a known party count;
* :class:`Future` — a write-once value a task can block on (sugar over a
  single FEB, mirroring qthreads' common writeEF/readFF idiom).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SchedulerError
from repro.qthreads.api import FebReadFF, FebWriteF
from repro.qthreads.feb import Feb


class Barrier:
    """Single-generation barrier: the last of ``parties`` arrivals releases all.

    Usage inside a task generator::

        yield from barrier.wait()

    Call :meth:`reset` between generations (all waiters must have left).
    """

    def __init__(self, parties: int, *, name: str = "") -> None:
        if parties <= 0:
            raise SchedulerError(f"barrier parties must be positive, got {parties!r}")
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._gate = Feb(name=f"{name}-gate")

    @property
    def arrived(self) -> int:
        """Arrivals so far in this generation."""
        return self._arrived

    def wait(self) -> Generator[Any, Any, None]:
        """Generator to ``yield from``: blocks until all parties arrive."""
        self._arrived += 1
        if self._arrived > self.parties:
            raise SchedulerError(
                f"barrier {self.name!r} overfilled: {self._arrived} > {self.parties}"
            )
        if self._arrived == self.parties:
            yield FebWriteF(self._gate, True)
        else:
            yield FebReadFF(self._gate)

    def reset(self) -> None:
        """Start a new generation.  Only valid once all waiters released."""
        if self._gate.waiting_readers:
            raise SchedulerError(f"barrier {self.name!r} reset with waiters parked")
        self._arrived = 0
        self._gate = Feb(name=f"{self.name}-gate")


class Future:
    """Write-once value with blocking read (a named FEB idiom)."""

    def __init__(self, *, name: str = "") -> None:
        self._feb = Feb(name=name)

    @property
    def resolved(self) -> bool:
        return self._feb.full

    def set(self, value: Any) -> Generator[Any, Any, None]:
        """Generator to ``yield from``: resolve the future (must be first)."""
        if self._feb.full:
            raise SchedulerError("future already resolved")
        yield FebWriteF(self._feb, value)

    def get(self) -> Generator[Any, Any, Any]:
        """Generator to ``yield from``: blocks until resolved, returns value."""
        value = yield FebReadFF(self._feb)
        return value
