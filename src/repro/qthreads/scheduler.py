"""Hierarchical (Sherwood) scheduler with MAESTRO throttling hooks.

Owns the shepherds and workers, routes task enqueues and wake-ups, picks
steal victims, settles FEB wait queues, and exposes the two control knobs
the throttle controller drives:

* :meth:`Scheduler.apply_throttle` — engage shepherd-local active-thread
  limits; workers discover them at their next thread-initiation point;
* :meth:`Scheduler.release_throttle` / :meth:`Scheduler.wake_spinners` —
  release spinning workers (throttle deactivation, parallel region/loop
  termination, application completion — the paper's four wake conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.config import MachineConfig, RuntimeConfig
from repro.errors import SchedulerError
from repro.qthreads.feb import Feb
from repro.qthreads.shepherd import Shepherd
from repro.qthreads.task import Task, TaskState
from repro.qthreads.worker import Worker
from repro.sim.engine import Engine
from repro.sim.events import Priority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.node import Node


@dataclass(frozen=True)
class OverheadModel:
    """Per-operation runtime costs in cycles (from RuntimeConfig)."""

    spawn_overhead_cycles: float
    steal_overhead_cycles: float
    queue_op_cycles: float


class Scheduler:
    """Shepherd collection + work-stealing + throttling state."""

    def __init__(
        self,
        engine: Engine,
        node: "Node",
        machine: MachineConfig,
        runtime_config: RuntimeConfig,
        rng: np.random.Generator,
    ) -> None:
        runtime_config.validate(machine)
        self.engine = engine
        self.node = node
        self.machine = machine
        self.config = runtime_config
        self.rng = rng
        self.frequency_hz = machine.frequency_hz
        self.spin_duty = runtime_config.spin_duty
        self.overhead = OverheadModel(
            spawn_overhead_cycles=runtime_config.spawn_overhead_cycles,
            steal_overhead_cycles=runtime_config.steal_overhead_cycles,
            queue_op_cycles=runtime_config.queue_op_cycles,
        )

        # Build shepherds: one per (socket x shepherds_per_socket), workers
        # distributed round-robin over the cores of the matching socket.
        self.shepherds: list[Shepherd] = []
        per_socket = runtime_config.shepherds_per_socket
        for socket in range(machine.sockets):
            for k in range(per_socket):
                self.shepherds.append(Shepherd(len(self.shepherds), socket))

        self.workers: list[Worker] = []
        threads = runtime_config.num_threads
        # Scatter pinning: thread i goes to socket i % sockets, matching
        # how the OS spreads unpinned OpenMP threads on the paper's blade
        # (without it, 8 threads would pile onto one socket and saturate
        # its memory system — the paper's 8-thread points clearly don't).
        sockets = machine.sockets
        for i in range(threads):
            socket = i % sockets
            local = i // sockets
            core_index = socket * machine.cores_per_socket + local
            shep_idx = socket * per_socket + (local % per_socket)
            shepherd = self.shepherds[shep_idx]
            worker = Worker(core_index, shepherd, self)
            shepherd.attach(worker)
            shepherd.idle_workers.add(worker)
            self.workers.append(worker)

        self.throttle_active = False
        self._dispatch_pending = False

        # -- stats ------------------------------------------------------
        self.spawn_count = 0
        self.completed_count = 0
        self.spin_entries = 0
        self.throttle_activations = 0
        self.throttle_deactivations = 0

    # ------------------------------------------------------------------
    # enqueue / dispatch
    # ------------------------------------------------------------------
    def enqueue(self, task: Task, shepherd_id: int, *, cold: bool = False) -> None:
        """Queue a task on a shepherd and arrange for idle workers to run it."""
        if task.state is TaskState.DONE:
            raise SchedulerError(f"cannot enqueue completed task {task.tid}")
        task.state = TaskState.QUEUED
        self.shepherds[shepherd_id % len(self.shepherds)].enqueue(task, cold=cold)
        self._request_dispatch()

    def _request_dispatch(self) -> None:
        """Schedule one deferred dispatch pass (coalesces bursts of spawns)."""
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.engine.schedule(0.0, self._dispatch, priority=Priority.SCHEDULER, label="dispatch")

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        work = sum(len(s.queue) for s in self.shepherds)
        if work == 0:
            return
        # Wake idle workers, preferring those whose own shepherd has work
        # (locality), then any other idle worker (they will steal).
        # Ordered by core index so wake order is deterministic (Python
        # sets iterate in id-dependent order).
        local_first = sorted(
            (w for s in self.shepherds for w in list(s.idle_workers)),
            key=lambda w: (0 if len(w.shepherd.queue) > 0 else 1, w.core_index),
        )
        for worker in local_first:
            if work <= 0:
                break
            if worker in worker.shepherd.idle_workers:
                worker.seek()
                work -= 1

    # ------------------------------------------------------------------
    # stealing
    # ------------------------------------------------------------------
    def steal_for(self, thief: Worker) -> Optional[Task]:
        """Steal the oldest task from some other shepherd, random victim order."""
        if len(self.shepherds) <= 1:
            return None
        candidates = [s for s in self.shepherds if s is not thief.shepherd and len(s.queue) > 0]
        if not candidates:
            return None
        order = self.rng.permutation(len(candidates))
        for idx in order:
            task = candidates[int(idx)].pop_steal()
            if task is not None:
                return task
        return None

    # ------------------------------------------------------------------
    # FEB settlement
    # ------------------------------------------------------------------
    def feb_settle(self, feb: Feb) -> None:
        """Wake FEB waiters enabled by a state transition.

        One fill wakes every pending ``readFF`` plus at most one
        ``readFE``; the resulting empty admits one parked ``writeEF``,
        which may cascade further — hence the loop.
        """
        while True:
            if feb.full and feb.waiting_readers:
                task, consume = feb.waiting_readers.popleft()
                ok, value = feb.try_read(consume=consume)
                assert ok, "FEB invariant: read from full word must succeed"
                task.resume_value = value
                self.enqueue(task, task.shepherd_hint)
                continue
            if not feb.full and feb.waiting_writers:
                task, value = feb.waiting_writers.popleft()
                ok = feb.try_write(value, require_empty=True)
                assert ok, "FEB invariant: write to empty word must succeed"
                task.resume_value = None
                self.enqueue(task, task.shepherd_hint)
                continue
            return

    # ------------------------------------------------------------------
    # MAESTRO throttling control surface
    # ------------------------------------------------------------------
    def apply_throttle(self, total_active_threads: int) -> None:
        """Engage throttling with ``total_active_threads`` allowed node-wide.

        The budget is split evenly across shepherds (the paper throttles
        per shepherd: each maintains its own counter and limit).  Workers
        observe the limit at their next thread-initiation point; nothing
        is preempted.
        """
        if total_active_threads <= 0:
            raise SchedulerError("throttle limit must be positive")
        per = max(1, total_active_threads // len(self.shepherds))
        for shepherd in self.shepherds:
            shepherd.throttle_limit = min(per, len(shepherd.workers))
        if not self.throttle_active:
            self.throttle_active = True
            self.throttle_activations += 1

    def release_throttle(self) -> None:
        """Disable throttling and wake all spinning workers."""
        if self.throttle_active:
            self.throttle_active = False
            self.throttle_deactivations += 1
        for shepherd in self.shepherds:
            shepherd.throttle_limit = len(shepherd.workers)
        self.wake_spinners()

    def wake_spinners(self) -> None:
        """Release all spinning workers to re-check the throttle gate.

        Called on throttle deactivation, parallel region termination,
        parallel loop termination, and application completion — the four
        conditions the paper's spin loop watches.
        """
        for shepherd in self.shepherds:
            for worker in sorted(shepherd.spinning_workers, key=lambda w: w.core_index):
                worker.wake_from_spin()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def active_worker_total(self) -> int:
        """Workers not spinning, across all shepherds."""
        return sum(s.active_count for s in self.shepherds)

    def blocked_tasks(self) -> list[Task]:
        """Tasks parked on FEBs or taskwait (best-effort, for diagnostics)."""
        seen: list[Task] = []
        for shepherd in self.shepherds:
            for worker in shepherd.workers:
                if worker.current is not None and worker.current.state is TaskState.BLOCKED:
                    seen.append(worker.current)
        return seen

    def queue_depths(self) -> list[int]:
        """Current queue depth per shepherd."""
        return [len(s.queue) for s in self.shepherds]
