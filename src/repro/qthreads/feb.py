"""Full/empty-bit (FEB) synchronisation.

Qthreads' signature synchronisation primitive: every FEB word carries a
full/empty bit.  Writers can wait for empty (``writeEF``) or write
unconditionally (``writeF``); readers wait for full and either leave the
bit full (``readFF``) or consume it to empty (``readFE``).

Blocked tasks are parked on the FEB and re-enqueued by the scheduler when
the state transition they wait for occurs.  Wake order is FIFO per
operation class, with a ``readFE`` consuming the value exclusively: one
fill wakes all pending ``readFF`` readers but only the first ``readFE``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qthreads.task import Task


class Feb:
    """One full/empty-bit synchronised word."""

    __slots__ = ("_value", "_full", "waiting_readers", "waiting_writers", "name")

    def __init__(self, *, name: str = "", value: Any = None, full: bool = False) -> None:
        self.name = name
        self._value = value
        self._full = full
        #: Parked (task, consume) pairs waiting for full.
        self.waiting_readers: Deque[tuple["Task", bool]] = deque()
        #: Parked (task, value) pairs waiting for empty (writeEF).
        self.waiting_writers: Deque[tuple["Task", Any]] = deque()

    @property
    def full(self) -> bool:
        """Current state of the full/empty bit."""
        return self._full

    @property
    def value(self) -> Any:
        """Stored value (meaningful only while full)."""
        return self._value

    # ------------------------------------------------------------------
    # Non-blocking primitive transitions.  The *scheduler* decides what to
    # do when these return None/False (park the task); the FEB itself only
    # holds state and wait queues.
    # ------------------------------------------------------------------
    def try_write(self, value: Any, *, require_empty: bool) -> bool:
        """Attempt a write; returns False if it must wait for empty."""
        if require_empty and self._full:
            return False
        self._value = value
        self._full = True
        return True

    def try_read(self, *, consume: bool) -> tuple[bool, Any]:
        """Attempt a read; returns (ok, value).  Empties the bit if consuming."""
        if not self._full:
            return False, None
        value = self._value
        if consume:
            self._full = False
            self._value = None
        return True, value

    def purge(self) -> None:
        """qthread_purge: force-empty the word.  Waiting readers stay parked."""
        self._full = False
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "full" if self._full else "empty"
        return f"Feb({self.name or id(self):}, {state}, readers={len(self.waiting_readers)})"
