"""The runtime facade: engine + node + scheduler, program lifecycle.

:class:`Runtime` is what applications and experiments construct.  It wires
the discrete-event engine, the simulated node, the scheduler, and
(optionally) the RCR daemon and MAESTRO throttle controller, then runs a
root task to completion and reports time/energy/power.

A run ends when the root task completes; the paper's fourth spinner wake
condition (application completion) is honoured by releasing the throttle
and waking all spinners just before the clock stops, so no core is left
duty-modulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config import MachineConfig, PAPER_MACHINE, RuntimeConfig
from repro.errors import DeadlockError, SimulationError
from repro.hw.node import Node
from repro.qthreads.api import TaskGen
from repro.qthreads.scheduler import Scheduler
from repro.qthreads.task import Task
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

#: Default wall-clock ceiling for a simulated program, seconds.  Generous:
#: the paper's longest run is ~142 s.
DEFAULT_TIME_LIMIT_S = 10_000.0


@dataclass
class RunResult:
    """Outcome of one program execution on the simulated node."""

    #: Return value of the root task generator.
    result: Any
    #: Simulated wall time from start to root completion, seconds.
    elapsed_s: float
    #: Energy consumed during the run, per socket, Joules.
    energy_j_sockets: list[float] = field(default_factory=list)
    #: Average power over the run, Watts.
    avg_power_w: float = 0.0
    #: Final die temperatures per socket, deg C.
    final_temps_degc: list[float] = field(default_factory=list)
    #: Scheduler statistics.
    tasks_spawned: int = 0
    tasks_completed: int = 0
    steals: int = 0
    spin_entries: int = 0
    throttle_activations: int = 0
    throttle_deactivations: int = 0

    @property
    def energy_j(self) -> float:
        """Total energy over the run, both sockets, Joules."""
        return sum(self.energy_j_sockets)


class Runtime:
    """Qthreads-style runtime bound to one simulated node."""

    def __init__(
        self,
        machine: MachineConfig = PAPER_MACHINE,
        runtime_config: Optional[RuntimeConfig] = None,
        *,
        engine: Optional[Engine] = None,
        seed: int = 0,
        warm: bool = True,
        stop_engine_on_done: bool = True,
        track_tag_energy: bool = False,
    ) -> None:
        self.machine = machine
        self.config = runtime_config if runtime_config is not None else RuntimeConfig()
        self.engine = engine if engine is not None else Engine()
        self.rng = RngStreams(seed)
        self.node = Node(
            self.engine, machine, warm=warm, track_tag_energy=track_tag_energy
        )
        self.scheduler = Scheduler(
            self.engine, self.node, machine, self.config, self.rng.stream("steal")
        )
        self._root: Optional[Task] = None
        self._root_done = False
        #: When several runtimes co-simulate on one engine (the cluster
        #: extension), a finishing root must not stop the shared engine.
        self._stop_engine_on_done = stop_engine_on_done
        #: Hooks invoked at parallel region/loop boundaries (throttle
        #: controller wake conditions); the OpenMP layer triggers these.
        self._region_listeners: list = []

    # ------------------------------------------------------------------
    # program lifecycle
    # ------------------------------------------------------------------
    def spawn_root(self, gen: TaskGen, label: str = "main") -> Task:
        """Create and enqueue the program's root task."""
        if self._root is not None and not self._root.done:
            raise SimulationError("a root task is already running")
        root = Task(gen, parent=None, label=label)
        self._root = root
        self._root_done = False
        root.add_listener(self._on_root_done)
        self.scheduler.enqueue(root, 0)
        return root

    def _on_root_done(self, task: Task) -> None:
        self._root_done = True
        # Application completion: release throttling, wake spinners,
        # restore full duty everywhere (paper Section IV wake conditions).
        self.scheduler.release_throttle()
        if self._stop_engine_on_done:
            self.engine.stop()

    @property
    def root_done(self) -> bool:
        """True once the current root task has completed."""
        return self._root_done

    def run(self, gen: TaskGen, *, label: str = "main",
            time_limit_s: float = DEFAULT_TIME_LIMIT_S) -> RunResult:
        """Execute a program (root task generator) to completion."""
        start_time = self.engine.now
        start_energy = [self.node.energy_j(s) for s in range(self.machine.sockets)]
        root = self.spawn_root(gen, label)

        self.engine.run(until=start_time + time_limit_s)

        if not root.done:
            # Distinguish a genuine timeout (live events remain beyond the
            # bound) from a drained queue (nothing can ever run again).
            if self.engine.peek_time() is not None:
                raise SimulationError(
                    f"program exceeded time limit of {time_limit_s} simulated seconds"
                )
            blocked = self.scheduler.blocked_tasks()
            raise DeadlockError(
                f"no runnable work but root task incomplete; "
                f"{len(blocked)} visibly blocked tasks: {blocked[:5]!r}"
            )

        elapsed = self.engine.now - start_time
        energy = [
            self.node.energy_j(s) - start_energy[s]
            for s in range(self.machine.sockets)
        ]
        sched = self.scheduler
        return RunResult(
            result=root.result,
            elapsed_s=elapsed,
            energy_j_sockets=energy,
            avg_power_w=(sum(energy) / elapsed) if elapsed > 0 else 0.0,
            final_temps_degc=[t.temp_degc for t in self.node.thermal],
            tasks_spawned=sched.spawn_count,
            tasks_completed=sched.completed_count,
            steals=sum(w.steals for w in sched.workers),
            spin_entries=sched.spin_entries,
            throttle_activations=sched.throttle_activations,
            throttle_deactivations=sched.throttle_deactivations,
        )

    # ------------------------------------------------------------------
    # region boundary notifications (throttle wake conditions)
    # ------------------------------------------------------------------
    def notify_region_boundary(self) -> None:
        """Signal a parallel region/loop termination.

        Spinning workers re-check the throttle gate here — one of the
        paper's four spin-exit conditions.
        """
        self.scheduler.wake_spinners()

    @property
    def num_threads(self) -> int:
        """Worker thread count of this runtime instance."""
        return self.config.num_threads
