"""C-API-shaped Qthreads veneer.

For code translated from programs written against the real Qthreads
library (Wheeler et al. [2]), this module mirrors its call names on top
of the generator operations:

    qthread_fork(func_gen)            -> Spawn
    qthread_readFF(feb) / readFE(feb) -> blocking FEB reads
    qthread_writeEF(feb, v)/writeF    -> FEB writes
    qthread_fill(feb, v)/empty(feb)   -> state control
    qthread_yield()                   -> cooperative yield
    qt_sinc-style joins               -> Taskwait

All of them either *return an operation to yield* or are generators to
``yield from`` — the translation of a C call `qthread_readFF(&v, &feb)`
is `v = yield qthread_readFF(feb)`.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.qthreads.api import (
    FebReadFE,
    FebReadFF,
    FebWriteEF,
    FebWriteF,
    Spawn,
    TaskGen,
    Taskwait,
    YieldTask,
)
from repro.qthreads.feb import Feb


def qthread_fork(gen: TaskGen, *, label: str = "qthread") -> Spawn:
    """qthread_fork(): spawn a lightweight thread; yields its handle."""
    return Spawn(gen, label=label)


def qthread_readFF(feb: Feb) -> FebReadFF:
    """qthread_readFF(): wait for full, read, leave full."""
    return FebReadFF(feb)


def qthread_readFE(feb: Feb) -> FebReadFE:
    """qthread_readFE(): wait for full, read, mark empty."""
    return FebReadFE(feb)


def qthread_writeEF(feb: Feb, value: Any) -> FebWriteEF:
    """qthread_writeEF(): wait for empty, write, mark full."""
    return FebWriteEF(feb, value)


def qthread_writeF(feb: Feb, value: Any) -> FebWriteF:
    """qthread_writeF(): write and mark full unconditionally."""
    return FebWriteF(feb, value)


def qthread_fill(feb: Feb, value: Any = None) -> FebWriteF:
    """qthread_fill(): mark full (optionally with a value)."""
    return FebWriteF(feb, value)


def qthread_empty(feb: Feb) -> None:
    """qthread_empty(): force the word empty.  Immediate, never blocks."""
    feb.purge()


def qthread_yield() -> YieldTask:
    """qthread_yield(): let other work run on this worker."""
    return YieldTask()


def qthread_join_children() -> Taskwait:
    """qt_sinc/taskwait idiom: wait for all children spawned so far."""
    return Taskwait()


def qthread_feb(*, name: str = "") -> Feb:
    """Allocate an aligned FEB word (qthread_feb_* allocation idiom)."""
    return Feb(name=name)


__all__ = [
    "qthread_empty",
    "qthread_feb",
    "qthread_fill",
    "qthread_fork",
    "qthread_join_children",
    "qthread_readFE",
    "qthread_readFF",
    "qthread_writeEF",
    "qthread_writeF",
    "qthread_yield",
]
