"""Always-on experiment service: streaming job submission over the harness.

The batch CLI runs one sweep and exits; this package keeps the harness
resident and feeds it a *stream* of :class:`~repro.harness.spec.RunSpec`
/ :class:`~repro.sched.spec.SchedSpec` /
:class:`~repro.cosched.spec.CoschedSpec` submissions over a
newline-delimited-JSON TCP protocol — the SMTcheck profiling-server
shape (listener → admission queue → workers → store) transplanted onto
:mod:`repro.harness`:

* :mod:`repro.service.protocol` — NDJSON framing, spec wire encoding,
  request validation;
* :mod:`repro.service.queue` — bounded FIFO admission with digest dedup;
* :mod:`repro.service.quotas` — per-client token-bucket rate limiting;
* :mod:`repro.service.journal` — the write-ahead JSONL journal that
  makes accepted jobs survive a service crash;
* :mod:`repro.service.workers` — killable one-process-per-job execution
  with hard deadlines, driving ``BatchExecutor``/``ResultCache``;
* :mod:`repro.service.server` — the asyncio service itself;
* :mod:`repro.service.client` — the blocking client the CLI, tests and
  benchmarks use.

Robustness contract (see docs/architecture.md for the failure-mode
table): full queues shed with an explicit ``retry_after_s`` instead of
buffering, duplicate digests attach to the in-flight or cached job
instead of re-running, per-job timeouts retry with bounded exponential
backoff into a terminal dead-letter state, crashed workers requeue their
job at most N times before quarantining it as poison, and a restart
against the same journal/cache directory drives every accepted job to a
terminal state without duplicate executions.
"""

from repro.service.client import ServiceClient
from repro.service.journal import Journal
from repro.service.jobs import Job, JobState, TERMINAL_STATES
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.service.queue import AdmissionQueue
from repro.service.quotas import ClientQuotas, TokenBucket
from repro.service.server import ExperimentService, ServiceConfig

__all__ = [
    "AdmissionQueue",
    "ClientQuotas",
    "ExperimentService",
    "Job",
    "JobState",
    "Journal",
    "MAX_FRAME_BYTES",
    "ServiceClient",
    "ServiceConfig",
    "TERMINAL_STATES",
    "TokenBucket",
    "decode_frame",
    "encode_frame",
    "spec_from_wire",
    "spec_to_wire",
]
