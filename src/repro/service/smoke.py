"""End-to-end service smoke: submit, dedup, worker kill, exactly-once.

``python -m repro.service.smoke`` (or ``make serve-smoke``) runs the
whole robustness story in a few seconds against a throwaway cache and
journal:

1. start the service (2 workers, ephemeral port);
2. submit three specs — a slow one, a fast one, and a *duplicate* of
   the fast one (same digest, different client);
3. SIGKILL the worker process running the slow spec mid-measurement;
4. assert every job reaches ``done`` and that the result cache's
   per-digest execution counts show exactly **two** executions — the
   duplicate attached instead of re-running, and the killed worker's
   redelivery re-ran without double-recording.

Exit code 0 and a single ``service smoke OK`` line on success; any
violated invariant raises.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.cache import ResultCache
from repro.harness.spec import RunSpec
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig
from repro.service.testing import ServiceThread

#: Slow enough to catch and kill mid-run, fast enough for a smoke test.
SLOW_SPEC = RunSpec(app="mergesort", threads=2, scale=1.0, seed=11)
FAST_SPEC = RunSpec(app="nqueens", threads=2, scale=0.05, seed=7)


def _wait_for_pid(client: ServiceClient, job: str,
                  deadline_s: float = 30.0) -> int:
    """Poll ``stats`` until ``job`` has a live worker pid."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        for active in client.stats()["active"]:
            if active["job"] == job and active["pid"]:
                return active["pid"]
        time.sleep(0.01)
    raise AssertionError(f"no worker pid observed for {job}")


def run_smoke(root: Path) -> str:
    cache_root = str(root / "cache")
    config = ServiceConfig(
        port=0,
        workers=2,
        queue_depth=16,
        timeout_s=60.0,
        retries=1,
        max_redeliveries=3,
        cache_root=cache_root,
        journal_path=str(root / "journal.jsonl"),
    )
    with ServiceThread(config) as svc:
        with ServiceClient(port=svc.port, name="smoke-a") as a, \
                ServiceClient(port=svc.port, name="smoke-b") as b:
            slow = a.submit(SLOW_SPEC)
            assert slow["ok"], slow
            fast = a.submit(FAST_SPEC)
            assert fast["ok"], fast
            dup = b.submit(FAST_SPEC)
            assert dup["ok"], dup
            assert dup["digest"] == fast["digest"]
            assert dup["job"] == fast["job"], \
                "duplicate digest must attach, not enqueue a second job"

            # Chaos: kill the worker measuring the slow spec.
            pid = _wait_for_pid(a, slow["job"])
            os.kill(pid, signal.SIGKILL)

            done_slow = a.result(slow["job"], timeout_s=120.0)
            done_fast = a.result(fast["job"], timeout_s=120.0)
            done_dup = b.result(dup["job"], timeout_s=120.0)
            for snap in (done_slow, done_fast, done_dup):
                assert snap["state"] == "done", snap
            assert done_slow["redeliveries"] >= 1, \
                "killed worker should have forced a redelivery"
            assert done_dup["subscribers"] >= 2

            stats = client_stats = a.stats()
            assert client_stats["counters"]["crashes"] >= 1, stats

    counts = ResultCache(root=cache_root).execution_counts()
    assert len(counts) == 2, f"expected 2 executed digests, got {counts}"
    assert all(n == 1 for n in counts.values()), \
        f"duplicate executions detected: {counts}"
    return (f"service smoke OK (3 submissions, {len(counts)} executions, "
            f"1 worker killed, redeliveries={done_slow['redeliveries']})")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-svc-smoke-") as tmp:
        print(run_smoke(Path(tmp)), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
