"""Typed telemetry events for the experiment service.

The service narrates itself on the same
:class:`~repro.harness.telemetry.TelemetryBus` the harness uses — the
sinks (``JsonlSink``, ``ListSink``) are event-agnostic, so service
events ride the existing machinery and stream to subscribed clients as
NDJSON.  The metrics the ROADMAP calls out are all here: queue depth on
every transition, retries, shed counts, and restart recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceStarted:
    """The listener is bound and accepting submissions."""

    host: str
    port: int
    workers: int
    queue_depth: int
    cache: bool
    journal: bool


@dataclass(frozen=True)
class ServiceRecovered:
    """Restart recovery: journaled non-terminal jobs were re-admitted."""

    jobs: int
    requeued: int
    cache_hits: int


@dataclass(frozen=True)
class ServiceDraining:
    """Shutdown begun: admissions rejected, in-flight work finishing."""

    queued: int
    in_flight: int


@dataclass(frozen=True)
class ServiceStopped:
    """End-of-life summary counters."""

    accepted: int
    executed: int
    cache_hits: int
    attached: int
    shed: int
    failed: int
    dead: int
    cancelled: int
    uptime_s: float


@dataclass(frozen=True)
class JobAccepted:
    """A submission passed admission control and was queued."""

    job: str
    digest: str
    kind: str
    client: str
    queue_depth: int


@dataclass(frozen=True)
class JobAttached:
    """A duplicate digest attached to the existing job instead of re-running."""

    job: str
    digest: str
    client: str
    state: str


@dataclass(frozen=True)
class JobCacheHit:
    """A submission was answered directly from the result cache."""

    job: str
    digest: str
    client: str


@dataclass(frozen=True)
class JobShed:
    """Admission control rejected a submission (explicit backpressure)."""

    client: str
    reason: str  # queue-full | quota | draining
    retry_after_s: float


@dataclass(frozen=True)
class JobStarted:
    """A worker process began executing the job."""

    job: str
    digest: str
    attempt: int
    pid: int


@dataclass(frozen=True)
class JobRetried:
    """A failed/timed-out attempt scheduled a backoff retry."""

    job: str
    digest: str
    attempt: int
    delay_s: float
    error: str


@dataclass(frozen=True)
class JobRequeued:
    """A crashed worker put the job back on the queue (redelivery)."""

    job: str
    digest: str
    redelivery: int
    error: str


@dataclass(frozen=True)
class WorkerCrashDetected:
    """A worker process died without reporting a result."""

    job: str
    digest: str
    pid: int


@dataclass(frozen=True)
class JobFinished:
    """The job reached DONE with a measured record."""

    job: str
    digest: str
    time_s: float
    energy_j: float
    watts: float
    wall_s: float


@dataclass(frozen=True)
class JobFailed:
    """The job exhausted its retry budget on a spec-level error."""

    job: str
    digest: str
    attempts: int
    error: str


@dataclass(frozen=True)
class JobDead:
    """Terminal dead-letter: timeout budget or redelivery budget exhausted."""

    job: str
    digest: str
    reason: str  # timeout | poison
    attempts: int
    redeliveries: int


@dataclass(frozen=True)
class JobCancelled:
    """The job was cancelled before reaching a worker."""

    job: str
    digest: str


@dataclass(frozen=True)
class QueueDepthChanged:
    """Queue/in-flight gauge, emitted on every transition."""

    depth: int
    in_flight: int
