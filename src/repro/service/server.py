"""The asyncio experiment service.

One process, four moving parts::

    TCP listener ──> admission control ──> FIFO queue ──> worker slots
    (NDJSON)         (quota, depth,        (bounded)      (fresh killable
                      dedup, cache)                        subprocesses)
                           │                                   │
                       WAL journal <───── every transition ────┘
                           │
                     result cache  (digest-idempotent store)

Robustness invariants (each has a test):

* a full queue or dry quota bucket sheds with ``retry_after_s`` —
  never unbounded buffering;
* at most one active job per digest — duplicates attach;
* accepted ⇒ journaled ⇒ eventually terminal, across restarts;
* a worker crash requeues its job at most ``max_redeliveries`` times,
  then quarantines it as poison (terminal ``dead``);
* a timeout kills the worker, retries with exponential backoff, then
  dead-letters;
* SIGTERM drains: no new admissions, accepted work finishes (bounded
  by ``drain_grace_s``; the journal carries the rest to the next
  incarnation).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import AdmissionError, ProtocolError, ServiceError
from repro.harness.cache import ResultCache
from repro.harness.telemetry import TelemetryBus
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    SpanRecorder,
    to_prometheus,
)
from repro.service import telemetry as stel
from repro.service.jobs import Job, JobState, result_summary
from repro.service.journal import Journal
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_response,
    spec_from_wire,
    spec_to_wire,
    validate_request,
)
from repro.service.queue import AdmissionQueue
from repro.service.quotas import ClientQuotas
from repro.service.workers import WorkerRunner


@dataclass
class ServiceConfig:
    """Everything the service needs, with robust defaults."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral, reported by ``ExperimentService.port``
    workers: int = 2
    queue_depth: int = 64
    #: Hard per-attempt wall-clock deadline (None: unbounded).
    timeout_s: Optional[float] = 120.0
    #: Spec-error/timeout retries per job (exponential backoff between).
    retries: int = 2
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0
    #: Crash redeliveries per job before poison quarantine.
    max_redeliveries: int = 2
    #: Token-bucket quota per client id.
    quota_rate: float = 50.0
    quota_burst: float = 100.0
    #: Hint returned with queue-full sheds.
    retry_after_s: float = 0.5
    #: Result-cache root (None: caching and dedup-by-cache disabled).
    cache_root: Optional[str] = None
    #: Write-ahead journal path (None: no crash recovery).
    journal_path: Optional[str] = None
    #: fsync journal appends (flush-only is crash-safe for process death;
    #: fsync additionally survives power loss).
    journal_fsync: bool = False
    #: Per-stream-client event buffer; overflow drops oldest.
    stream_buffer: int = 256
    #: How long a drain waits for accepted work before handing the
    #: remainder to the journal.
    drain_grace_s: float = 30.0
    #: Optional HTTP scrape port: GET anything on it returns the
    #: Prometheus text exposition (0: ephemeral; None: no HTTP listener —
    #: the NDJSON ``metrics`` frame is always available).
    metrics_port: Optional[int] = None


#: Lifecycle/admission event names (label values of
#: ``service_events_total`` and keys of the back-compat ``counters``
#: mapping).  Declared up front so every series exists — and exports as
#: an explicit zero — before the first event fires.
EVENT_KEYS = (
    "accepted", "attached", "cache_hits", "executed",
    "shed_queue", "shed_quota", "shed_draining",
    "retries", "timeouts", "crashes", "requeues",
    "failed", "dead", "cancelled", "recovered",
    "stream_dropped",
)


class _StreamFanout:
    """Telemetry sink fanning events out to every streaming client."""

    def __init__(self, service: "ExperimentService") -> None:
        self._service = service

    def handle(self, event: Any) -> None:
        self._service._fan_out(event)


class ExperimentService:
    """Long-running job-submission service over the experiment harness."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        bus: Optional[TelemetryBus] = None,
        worker_entry=None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.bus = bus if bus is not None else TelemetryBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = SpanRecorder(max_spans=4096)
        self.cache = (ResultCache(root=config.cache_root)
                      if config.cache_root else None)
        self.queue = AdmissionQueue(config.queue_depth,
                                    retry_after_s=config.retry_after_s)
        self.quotas = ClientQuotas(config.quota_rate, config.quota_burst)
        self.runner = WorkerRunner(
            timeout_s=config.timeout_s,
            cache_root=config.cache_root,
            entry=worker_entry,
        )
        self.journal: Optional[Journal] = None
        self.jobs: dict[str, Job] = {}
        self._by_digest: dict[str, Job] = {}  # latest job per digest
        self._done: dict[str, asyncio.Event] = {}
        self._streams: dict[int, asyncio.Queue] = {}
        self._stream_seq = 0
        self._seq = 1
        self._busy = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._wake = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._threads: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at = 0.0
        self._fanout = _StreamFanout(self)
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        # Instruments: the registry is the single source of truth for
        # operational state; the legacy ``counters`` mapping (and the
        # ``stats`` frame built on it) is a read-only view of
        # ``service_events_total``.
        reg = self.registry
        self._events = reg.counter(
            "service_events_total",
            "Job lifecycle and admission events, by kind.",
            labels=("event",))
        for key in EVENT_KEYS:
            self._events.inc(0.0, event=key)
        self._frames = reg.counter(
            "service_frames_total",
            "Protocol frames handled, by op (invalid: protocol errors).",
            labels=("op",))
        self._frame_seconds = reg.histogram(
            "service_frame_seconds",
            "Frame handling latency in seconds, by op.",
            labels=("op",))
        self._queue_depth_gauge = reg.gauge(
            "service_queue_depth", "Jobs waiting in the admission queue.",
            agg="max")
        self._in_flight_gauge = reg.gauge(
            "service_in_flight", "Jobs occupying worker slots.", agg="max")
        self._streams_gauge = reg.gauge(
            "service_streams_active", "Connected telemetry-stream clients.",
            agg="max")
        for gauge in (self._queue_depth_gauge, self._in_flight_gauge,
                      self._streams_gauge):
            gauge.set(0.0)
        self._cache_requests = reg.counter(
            "service_cache_requests_total",
            "Result-cache lookups on the admission path, by outcome.",
            labels=("result",))
        self._cache_requests.inc(0.0, result="hit")
        self._cache_requests.inc(0.0, result="miss")
        self._stream_drops = reg.counter(
            "service_stream_dropped_total",
            "Telemetry events dropped by slow streaming clients "
            "(drop-oldest buffer overflow).")
        self._journal_seconds = reg.histogram(
            "service_journal_append_seconds",
            "Journal append latency in seconds (write+flush, fsync "
            "included when enabled).")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """Resolved HTTP scrape port (None when not configured)."""
        if self._metrics_server is None or not self._metrics_server.sockets:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def counters(self) -> dict[str, int]:
        """Legacy event-counter view, read from the metrics registry."""
        return {key: int(self._events.value(event=key))
                for key in EVENT_KEYS}

    def _count(self, event: str) -> None:
        self._events.inc(event=event)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="svc-worker")
        recovered = 0
        plan = None
        if self.config.journal_path:
            plan = Journal.recover(self.config.journal_path)
            self.journal = Journal(self.config.journal_path,
                                   fsync=self.config.journal_fsync,
                                   observe=self._journal_seconds.observe)
            self._seq = max(self._seq, plan.next_seq)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port,
            limit=MAX_FRAME_BYTES + 1024,
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_scrape, self.config.host,
                self.config.metrics_port)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        if plan is not None and plan.pending:
            recovered = self._recover(plan)
        self._journal_meta("service-start", recovered=recovered)
        self.bus.emit(stel.ServiceStarted(
            host=self.config.host, port=self.port,
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            cache=self.cache is not None,
            journal=self.journal is not None,
        ))

    def _recover(self, plan) -> int:
        """Re-admit every journaled non-terminal job (dedup-aware)."""
        requeued = 0
        cache_hits = 0
        recovered_jobs: list[Job] = []
        for entry in plan.pending:
            try:
                spec = spec_from_wire(entry["spec"])
            except ProtocolError as exc:
                # An unreadable journal entry must still terminate: fail
                # it rather than silently forgetting an accepted job.
                self._journal("failed", job_id=entry["job"],
                              digest=str(entry.get("digest")),
                              error=f"unrecoverable journal entry: {exc}")
                continue
            active = self.queue.active_for(spec.digest)
            if active is not None:
                active.subscribers.extend(entry["clients"])
                continue
            job = Job(id=entry["job"], spec=spec, kind=entry["kind"],
                      client=entry["client"],
                      subscribers=list(entry["clients"]))
            self._track(job)
            self._count("recovered")
            self._journal("recovered", job=job)
            if self._complete_from_cache(job):
                cache_hits += 1
                continue
            recovered_jobs.append(job)
        # ``requeue`` prepends, so walk in reverse to preserve FIFO order.
        for job in reversed(recovered_jobs):
            self.queue.requeue(job)
            requeued += 1
        if requeued:
            self._wake.set()
        self.bus.emit(stel.ServiceRecovered(
            jobs=len(plan.pending), requeued=requeued,
            cache_hits=cache_hits))
        self._gauge()
        return len(plan.pending)

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain accepted work, shut down."""
        if self._draining:
            return
        self._draining = True
        self.bus.emit(stel.ServiceDraining(
            queued=len(self.queue), in_flight=self._busy))
        if self._server is not None:
            self._server.close()
        if drain:
            deadline = time.monotonic() + self.config.drain_grace_s
            while (self._busy or len(self.queue)) and \
                    time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            with contextlib.suppress(Exception):
                await self._metrics_server.wait_closed()
        self._journal_meta("service-stop")
        self.bus.emit(stel.ServiceStopped(
            accepted=self.counters["accepted"],
            executed=self.counters["executed"],
            cache_hits=self.counters["cache_hits"],
            attached=self.counters["attached"],
            shed=(self.counters["shed_queue"] + self.counters["shed_quota"]
                  + self.counters["shed_draining"]),
            failed=self.counters["failed"],
            dead=self.counters["dead"],
            cancelled=self.counters["cancelled"],
            uptime_s=time.time() - self._started_at,
        ))
        if self.journal is not None:
            self.journal.close()
        if self._threads is not None:
            self._threads.shutdown(wait=False)
        self._stopped.set()

    # ------------------------------------------------------------------
    # journaling / bookkeeping helpers
    # ------------------------------------------------------------------
    def _journal(self, ev: str, *, job: Optional[Job] = None,
                 job_id: Optional[str] = None, digest: str = "",
                 **fields: Any) -> None:
        if self.journal is None:
            return
        if job is not None:
            if ev in ("accepted", "attached", "recovered"):
                fields = {**job.journal_fields(), **fields}
            else:
                fields = {"job": job.id, "digest": job.digest, **fields}
        elif job_id is not None:
            fields = {"job": job_id, "digest": digest, **fields}
        self.journal.append(ev, **fields)

    def _journal_meta(self, ev: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(ev, **fields)

    def _track(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._by_digest[job.digest] = job
        self._done[job.id] = asyncio.Event()

    def _gauge(self) -> None:
        self._queue_depth_gauge.set(float(len(self.queue)))
        self._in_flight_gauge.set(float(self._busy))
        self.bus.emit(stel.QueueDepthChanged(
            depth=len(self.queue), in_flight=self._busy))

    def _next_id(self) -> str:
        job_id = f"j-{self._seq:06d}"
        self._seq += 1
        return job_id

    def _finalize(self, job: Job, state: JobState) -> None:
        job.state = state
        job.finished_at = time.time()
        self.queue.finish(job)
        event = self._done.get(job.id)
        if event is not None:
            event.set()
        self._wake.set()

    def _complete_from_cache(self, job: Job) -> bool:
        """DONE straight from the result cache, if the digest is stored."""
        if self.cache is None:
            return False
        record = self.cache.get(job.spec)
        self._cache_requests.inc(result="hit" if record is not None
                                 else "miss")
        if record is None:
            return False
        job.source = "cache"
        job.result = result_summary(record)
        self._journal("finished", job=job, source="cache")
        self._finalize(job, JobState.DONE)
        self._count("cache_hits")
        self.bus.emit(stel.JobCacheHit(
            job=job.id, digest=job.digest, client=job.client))
        return True

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _submit(self, frame: dict[str, Any], peer: str) -> dict[str, Any]:
        spec = spec_from_wire(frame["spec"])
        kind = frame["spec"].get("kind", "run")
        client = frame.get("client") or peer
        if self._draining:
            self._count("shed_draining")
            self.bus.emit(stel.JobShed(client=client, reason="draining",
                                       retry_after_s=0.0))
            return error_response("submit", "service is draining",
                                  reason="draining")
        # Dedup: an active (queued/running) or successfully-completed job
        # for this digest absorbs the submission.  Failed/dead/cancelled
        # digests do NOT attach — a client resubmitting one deserves a
        # fresh attempt, not a replay of the old corpse.
        known = self.queue.active_for(spec.digest)
        if known is None:
            remembered = self._by_digest.get(spec.digest)
            if remembered is not None and remembered.state is JobState.DONE:
                known = remembered
        if known is not None:
            known.subscribers.append(client)
            self._count("attached")
            self._journal("attached", job=known, client=client)
            self.bus.emit(stel.JobAttached(
                job=known.id, digest=known.digest, client=client,
                state=known.state.value))
            response = {"ok": True, "op": "submit", "attached": True,
                        **known.snapshot()}
            return response
        job = Job(id=self._next_id(), spec=spec, kind=kind, client=client,
                  subscribers=[client])
        # Cache check before quota: answering from the store costs no
        # worker slot, so it should never be shed.
        self._track(job)
        self._journal("accepted", job=job)
        if self._complete_from_cache(job):
            return {"ok": True, "op": "submit", "attached": False,
                    **job.snapshot()}
        wait_s = self.quotas.admit(client)
        if wait_s > 0.0:
            self._forget(job)
            self._count("shed_quota")
            self._journal("cancelled", job=job, reason="quota")
            self.bus.emit(stel.JobShed(client=client, reason="quota",
                                       retry_after_s=wait_s))
            return error_response("submit", "client quota exhausted",
                                  reason="quota", retry_after_s=wait_s)
        try:
            self.queue.push(job)
        except AdmissionError as exc:
            self._forget(job)
            self._count("shed_queue")
            self._journal("cancelled", job=job, reason="queue-full")
            self.bus.emit(stel.JobShed(client=client, reason=exc.reason,
                                       retry_after_s=exc.retry_after_s))
            return error_response("submit", str(exc), reason=exc.reason,
                                  retry_after_s=exc.retry_after_s)
        self._count("accepted")
        self.bus.emit(stel.JobAccepted(
            job=job.id, digest=job.digest, kind=kind, client=client,
            queue_depth=len(self.queue)))
        self._gauge()
        self._wake.set()
        return {"ok": True, "op": "submit", "attached": False,
                **job.snapshot()}

    def _forget(self, job: Job) -> None:
        """Undo :meth:`_track` for a job that was never admitted."""
        self.jobs.pop(job.id, None)
        self._done.pop(job.id, None)
        if self._by_digest.get(job.digest) is job:
            del self._by_digest[job.digest]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._busy < self.config.workers and len(self.queue):
                job = self.queue.pop()
                if job is None:  # pragma: no cover - len() guards this
                    break
                self._busy += 1
                asyncio.ensure_future(self._run_job(job))
                self._gauge()

    def _note_started(self, job: Job, pid: int) -> None:
        job.pid = pid
        self._journal("started", job=job, attempt=job.attempts, pid=pid)
        self.bus.emit(stel.JobStarted(
            job=job.id, digest=job.digest, attempt=job.attempts, pid=pid))

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        config = self.config
        try:
            while True:
                job.state = JobState.RUNNING
                job.attempts += 1
                job.started_at = time.time()

                def _on_start(pid: int, job=job) -> None:
                    loop.call_soon_threadsafe(self._note_started, job, pid)

                span = self.tracer.start(
                    f"job:{job.kind}", track="workers", job=job.id,
                    digest=job.digest[:12], attempt=job.attempts)
                outcome = await loop.run_in_executor(
                    self._threads, lambda: self.runner.run(
                        job.id, job.spec, on_start=_on_start))
                self.tracer.finish(span, outcome=outcome.kind)
                if job.cancel_requested:
                    job.error = "cancelled while running"
                    self._count("cancelled")
                    self._journal("cancelled", job=job, reason="client")
                    self.bus.emit(stel.JobCancelled(job=job.id,
                                                    digest=job.digest))
                    self._finalize(job, JobState.CANCELLED)
                    return
                if outcome.kind == "ok":
                    job.source = "executed"
                    job.result = result_summary(outcome.record)
                    job.error = None
                    self._count("executed")
                    self._journal("finished", job=job, source="executed")
                    self.bus.emit(stel.JobFinished(
                        job=job.id, digest=job.digest,
                        time_s=job.result.get("time_s", 0.0),
                        energy_j=job.result.get("energy_j", 0.0),
                        watts=job.result.get("watts", 0.0),
                        wall_s=job.result.get("wall_s", 0.0)))
                    self._finalize(job, JobState.DONE)
                    return
                if outcome.kind == "crash":
                    self._count("crashes")
                    self.bus.emit(stel.WorkerCrashDetected(
                        job=job.id, digest=job.digest, pid=outcome.pid))
                    job.redeliveries += 1
                    job.error = outcome.error
                    if job.redeliveries > config.max_redeliveries:
                        # Poison quarantine: this spec keeps killing its
                        # workers; stop redelivering it.
                        self._count("dead")
                        self._journal("dead", job=job, reason="poison",
                                      error=outcome.error)
                        self.bus.emit(stel.JobDead(
                            job=job.id, digest=job.digest, reason="poison",
                            attempts=job.attempts,
                            redeliveries=job.redeliveries))
                        self._finalize(job, JobState.DEAD)
                        return
                    self._count("requeues")
                    job.state = JobState.QUEUED
                    self._journal("requeued", job=job,
                                  redelivery=job.redeliveries)
                    self.bus.emit(stel.JobRequeued(
                        job=job.id, digest=job.digest,
                        redelivery=job.redeliveries, error=outcome.error))
                    self.queue.requeue(job)
                    self._wake.set()
                    self._gauge()
                    return  # slot freed in ``finally``; dispatcher re-runs
                # Spec error or timeout: bounded exponential-backoff
                # retries, then a terminal state.
                job.failures += 1
                job.error = outcome.error
                if outcome.kind == "timeout":
                    self._count("timeouts")
                if job.failures <= config.retries:
                    delay = min(
                        config.backoff_base_s * (2 ** (job.failures - 1)),
                        config.backoff_max_s)
                    self._count("retries")
                    self._journal("retry", job=job, attempt=job.attempts,
                                  delay_s=delay, error=outcome.error)
                    self.bus.emit(stel.JobRetried(
                        job=job.id, digest=job.digest, attempt=job.attempts,
                        delay_s=delay, error=outcome.error))
                    await asyncio.sleep(delay)
                    continue
                if outcome.kind == "timeout":
                    # Dead-letter: the spec never fits its deadline.
                    self._count("dead")
                    self._journal("dead", job=job, reason="timeout",
                                  error=outcome.error)
                    self.bus.emit(stel.JobDead(
                        job=job.id, digest=job.digest, reason="timeout",
                        attempts=job.attempts,
                        redeliveries=job.redeliveries))
                    self._finalize(job, JobState.DEAD)
                    return
                self._count("failed")
                self._journal("failed", job=job, error=outcome.error)
                self.bus.emit(stel.JobFailed(
                    job=job.id, digest=job.digest, attempts=job.attempts,
                    error=outcome.error))
                self._finalize(job, JobState.FAILED)
                return
        finally:
            self._busy -= 1
            self._wake.set()
            self._gauge()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _find_job(self, key: str) -> Optional[Job]:
        return self.jobs.get(key) or self._by_digest.get(key)

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "unknown"
        stream_id: Optional[int] = None
        sender: Optional[asyncio.Task] = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized frame: framing is lost, shed and close.
                    self._frames.inc(op="invalid")
                    await self._send(writer, error_response(
                        None, "frame exceeds size limit",
                        reason="oversized"))
                    break
                if not line:
                    break  # EOF / half-close: clean disconnect
                try:
                    frame = validate_request(decode_frame(line))
                except ProtocolError as exc:
                    self._frames.inc(op="invalid")
                    await self._send(writer, error_response(
                        None, str(exc), reason="protocol"))
                    continue
                op = frame["op"]
                started = time.perf_counter()
                response = await self._dispatch(frame, peer)
                self._frames.inc(op=op)
                self._frame_seconds.observe(
                    time.perf_counter() - started, op=op)
                await self._send(writer, response)
                if frame["op"] == "stream" and stream_id is None:
                    # Subscribe only after the ack is on the wire, so the
                    # client never sees an event frame before its response.
                    stream_id, sender = self._subscribe_stream(writer)
                if frame["op"] == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away mid-write; nothing to salvage
        finally:
            if stream_id is not None:
                self._streams.pop(stream_id, None)
                self._streams_gauge.set(float(len(self._streams)))
            if sender is not None:
                sender.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await sender
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, frame: dict[str, Any],
                        peer: str) -> dict[str, Any]:
        op = frame["op"]
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "submit":
            try:
                return self._submit(frame, peer)
            except ProtocolError as exc:
                return error_response("submit", str(exc), reason="protocol")
        if op == "stats":
            return self._stats()
        if op == "metrics":
            return self._metrics()
        if op == "stream":
            return {"ok": True, "op": "stream",
                    "buffer": self.config.stream_buffer}
        if op == "shutdown":
            drain = frame.get("drain", True)
            asyncio.ensure_future(self.stop(drain=drain))
            return {"ok": True, "op": "shutdown", "drain": drain}
        job = self._find_job(frame["job"])
        if job is None:
            return error_response(op, f"unknown job {frame['job']!r}",
                                  reason="unknown-job")
        if op == "status":
            return {"ok": True, "op": "status", **job.snapshot()}
        if op == "result":
            timeout = frame.get("timeout_s")
            event = self._done.get(job.id)
            if not job.terminal and event is not None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        event.wait(),
                        timeout if timeout is not None else None)
            if not job.terminal:
                return error_response(
                    "result",
                    f"job {job.id} not terminal within {timeout}s",
                    reason="wait-timeout")
            return {"ok": True, "op": "result", **job.snapshot()}
        if op == "cancel":
            return self._cancel(job)
        return error_response(op, f"unhandled op {op!r}",
                              reason="protocol")  # pragma: no cover

    def _cancel(self, job: Job) -> dict[str, Any]:
        if job.terminal:
            return {"ok": True, "op": "cancel", "cancelled": False,
                    **job.snapshot()}
        if self.queue.remove(job):
            job.error = "cancelled while queued"
            self._count("cancelled")
            self._journal("cancelled", job=job, reason="client")
            self.bus.emit(stel.JobCancelled(job=job.id, digest=job.digest))
            self._finalize(job, JobState.CANCELLED)
            self._gauge()
            return {"ok": True, "op": "cancel", "cancelled": True,
                    **job.snapshot()}
        # Running: flag it and kill the worker; the crash path converts
        # the flag into a CANCELLED terminal state instead of a requeue.
        job.cancel_requested = True
        if job.pid:
            with contextlib.suppress(OSError):
                os.kill(job.pid, signal.SIGKILL)
        return {"ok": True, "op": "cancel", "cancelled": True,
                "pending": True, **job.snapshot()}

    def _stats(self) -> dict[str, Any]:
        active = [{"job": job_id, "pid": pid}
                  for job_id, pid in sorted(self.runner.active_pids().items())]
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "ok": True,
            "op": "stats",
            "uptime_s": time.time() - self._started_at,
            "queue_depth": len(self.queue),
            "in_flight": self._busy,
            "workers": self.config.workers,
            "draining": self._draining,
            "active": active,
            "jobs": states,
            "counters": dict(self.counters),
            "cache": (self.cache.info() if self.cache is not None else None),
        }

    def _metrics(self) -> dict[str, Any]:
        """Observability frame: exposition + snapshot JSON + top spans."""
        snapshot = self.registry.snapshot()
        return {
            "ok": True,
            "op": "metrics",
            "prometheus": to_prometheus(snapshot),
            "snapshot": snapshot.to_json_obj(),
            "spans": [span.to_json_obj() for span in self.tracer.top(20)],
            "dropped_spans": self.tracer.dropped,
        }

    async def _handle_scrape(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.1 GET handler for Prometheus scrapers."""
        try:
            while True:  # consume the request head; the path is ignored
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = to_prometheus(self.registry.snapshot()).encode("utf-8")
            head = (
                "HTTP/1.1 200 OK\r\n"
                f"Content-Type: {PROMETHEUS_CONTENT_TYPE}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # scraper went away; nothing to salvage
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def _subscribe_stream(self, writer: asyncio.StreamWriter):
        if not self._streams:
            self.bus.subscribe(self._fanout)
        self._stream_seq += 1
        stream_id = self._stream_seq
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, self.config.stream_buffer))
        self._streams[stream_id] = queue
        self._streams_gauge.set(float(len(self._streams)))
        sender = asyncio.ensure_future(self._stream_sender(queue, writer))
        return stream_id, sender

    def _fan_out(self, event: Any) -> None:
        frame = {"event": type(event).__name__,
                 **dataclasses.asdict(event)}
        for queue in self._streams.values():
            if queue.full():
                # Slow consumer: drop the oldest event, never block the
                # service on a client's socket.
                with contextlib.suppress(asyncio.QueueEmpty):
                    queue.get_nowait()
                self._count("stream_dropped")
                self._stream_drops.inc()
            queue.put_nowait(frame)

    async def _stream_sender(self, queue: asyncio.Queue,
                             writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(ConnectionResetError, BrokenPipeError,
                                 OSError, asyncio.CancelledError):
            while True:
                frame = await queue.get()
                writer.write(encode_frame(frame))
                await writer.drain()

    async def _send(self, writer: asyncio.StreamWriter,
                    response: dict[str, Any]) -> None:
        writer.write(encode_frame(response))
        await writer.drain()


# ----------------------------------------------------------------------
# entry point (``repro-paper serve`` / ``python -m repro.service``)
# ----------------------------------------------------------------------
def _install_signal_handlers(loop: asyncio.AbstractEventLoop,
                             service: ExperimentService) -> None:
    def _drain() -> None:
        asyncio.ensure_future(service.stop(drain=True))

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support


async def _serve(config: ServiceConfig, bus: TelemetryBus) -> None:
    service = ExperimentService(config, bus=bus)
    await service.start()
    _install_signal_handlers(asyncio.get_running_loop(), service)
    print(f"service listening on {config.host}:{service.port}", flush=True)
    if service.metrics_port is not None:
        print(f"metrics exposition on http://{config.host}:"
              f"{service.metrics_port}/metrics", flush=True)
    await service.serve_forever()


def add_serve_arguments(parser) -> None:
    """Attach the ``serve`` options (shared with the ``repro-paper`` CLI)."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7823,
                        help="listen port (0: ephemeral, printed on start)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=120.0, metavar="S",
                        help="per-attempt hard deadline (0: unbounded)")
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument("--redeliveries", type=int, default=2,
                        help="crash redeliveries before poison quarantine")
    parser.add_argument("--quota-rate", type=float, default=50.0)
    parser.add_argument("--quota-burst", type=float, default=100.0)
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache root (default: the harness "
                             "default; pass 'none' to disable)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="write-ahead journal path (enables crash "
                             "recovery)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every journal append")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve the Prometheus text exposition over "
                             "HTTP on PORT (0: ephemeral; default: off)")
    parser.add_argument("--events", default=None, metavar="FILE",
                        help="append service telemetry to FILE (JSONL)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the event narration on stderr")


def serve_from_args(args) -> int:
    """Run the service described by a parsed ``serve`` namespace."""
    from repro.harness.cache import default_cache_root
    from repro.harness.telemetry import JsonlSink

    if args.cache_dir == "none":
        cache_root = None
    elif args.cache_dir is None:
        cache_root = str(default_cache_root())
    else:
        cache_root = args.cache_dir

    bus = TelemetryBus()
    jsonl = None
    if args.events:
        jsonl = JsonlSink(args.events)
        bus.subscribe(jsonl)
    if not args.quiet:
        from repro.service.client import ServiceEventPrinter

        bus.subscribe(ServiceEventPrinter())

    config = ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth,
        timeout_s=(args.timeout if args.timeout > 0 else None),
        retries=args.retries, max_redeliveries=args.redeliveries,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        cache_root=cache_root, journal_path=args.journal,
        journal_fsync=args.fsync,
        metrics_port=getattr(args, "metrics_port", None),
    )
    try:
        asyncio.run(_serve(config, bus))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        if jsonl is not None:
            jsonl.close()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Entry for ``python -m repro.service``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-paper serve",
        description="always-on experiment service (NDJSON over TCP)",
    )
    add_serve_arguments(parser)
    return serve_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
