"""NDJSON wire protocol for the experiment service.

One frame = one JSON object on one ``\\n``-terminated line, UTF-8, at
most :data:`MAX_FRAME_BYTES` long.  Requests carry an ``op``; responses
always carry ``ok`` (and ``error`` / ``retry_after_s`` when ``ok`` is
false).  Streamed telemetry events are pushed as frames with an
``event`` key.

Spec payloads travel as ``{"kind": "run"|"sched"|"cosched",
"fields": {...}}`` where ``fields`` are the spec dataclass's
constructor arguments (nested ``ThrottleConfig`` / ``FaultConfig`` as
dicts; ``faults`` alternatively as the CLI's fault-spec string; a sched
spec's ``predictor`` as the :class:`~repro.cosched.predictor.
PredictorModel` payload).  :func:`spec_from_wire` ∘
:func:`spec_to_wire` is the identity on specs — a Hypothesis property
pins that.

Everything here raises :class:`~repro.errors.ProtocolError` on bad
input; the server converts that into an ``ok: false`` response rather
than dropping the connection, so one malformed frame cannot take a
well-behaved client down with it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Union

from repro.config import FaultConfig, MeterConfig, ThrottleConfig
from repro.cosched.predictor import PredictorModel
from repro.cosched.spec import CoschedSpec
from repro.errors import ConfigError, ProtocolError
from repro.harness.spec import RunSpec
from repro.sched.spec import SchedSpec

#: Hard bound on one frame (request line or response line), newline
#: included.  Oversized frames are shed at the framing layer, before any
#: JSON parsing buys the sender amplification.
MAX_FRAME_BYTES = 128 * 1024

#: Requests the server understands.
OPS = frozenset(
    {"submit", "status", "result", "cancel", "stream", "stats",
     "metrics", "shutdown", "ping"}
)

Spec = Union[RunSpec, SchedSpec, CoschedSpec]

_RUN_FIELDS = {f.name for f in dataclasses.fields(RunSpec)}
_SCHED_FIELDS = {f.name for f in dataclasses.fields(SchedSpec)}
_COSCHED_FIELDS = {f.name for f in dataclasses.fields(CoschedSpec)}
_THROTTLE_FIELDS = {f.name for f in dataclasses.fields(ThrottleConfig)}
_FAULT_FIELDS = {f.name for f in dataclasses.fields(FaultConfig)}
_METER_FIELDS = {f.name for f in dataclasses.fields(MeterConfig)}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: dict[str, Any]) -> bytes:
    """Render one frame as a newline-terminated UTF-8 JSON line."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    try:
        line = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serialisable: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a frame dict (strict)."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# spec wire encoding
# ----------------------------------------------------------------------
def spec_to_wire(spec: Spec) -> dict[str, Any]:
    """Encode a spec as its wire payload (constructor args, JSON-safe)."""
    if isinstance(spec, RunSpec):
        fields = dataclasses.asdict(spec)
        return {"kind": "run", "fields": fields}
    if isinstance(spec, SchedSpec):
        fields = dataclasses.asdict(spec)
        fields["apps"] = list(fields["apps"])
        # asdict recursed into the PredictorModel dataclass; replace it
        # with the canonical payload so the wire shape matches
        # PredictorModel.from_payload (sorted entries, schema-tagged).
        if spec.predictor is not None:
            fields["predictor"] = spec.predictor.to_payload()
        return {"kind": "sched", "fields": fields}
    if isinstance(spec, CoschedSpec):
        return {"kind": "cosched", "fields": dataclasses.asdict(spec)}
    raise ProtocolError(f"unsupported spec type {type(spec).__name__}")


def _nested(name: str, value: Any, cls, allowed: set[str]):
    if value is None:
        return None
    if not isinstance(value, dict):
        raise ProtocolError(
            f"spec field {name!r} must be an object or null, "
            f"got {type(value).__name__}"
        )
    unknown = set(value) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown {name} field(s): {', '.join(sorted(unknown))}"
        )
    try:
        return cls(**value)
    except (ConfigError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {name}: {exc}") from exc


def spec_from_wire(wire: dict[str, Any]) -> Spec:
    """Decode and validate a wire payload back into a spec.

    Unknown top-level or nested field names are rejected (a typo'd field
    silently ignored would change the digest the client *thinks* it
    submitted), and every constructor-level validation error surfaces as
    :class:`ProtocolError`.
    """
    if not isinstance(wire, dict):
        raise ProtocolError(
            f"spec payload must be an object, got {type(wire).__name__}"
        )
    kind = wire.get("kind", "run")
    fields = wire.get("fields")
    if not isinstance(fields, dict):
        raise ProtocolError("spec payload must carry a 'fields' object")
    fields = dict(fields)
    if kind == "run":
        unknown = set(fields) - _RUN_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown run-spec field(s): {', '.join(sorted(unknown))}"
            )
        if "app" not in fields:
            raise ProtocolError("run spec requires an 'app' field")
        # RunSpec itself validates the app lazily at execution time; the
        # protocol rejects it eagerly so a typo is a shed, not a worker
        # retry loop.
        from repro.apps import APP_REGISTRY

        if fields["app"] not in APP_REGISTRY:
            raise ProtocolError(
                f"invalid run spec: unknown application {fields['app']!r}"
            )
        fields["throttle_config"] = _nested(
            "throttle_config", fields.get("throttle_config"),
            ThrottleConfig, _THROTTLE_FIELDS,
        )
        faults = fields.get("faults")
        if isinstance(faults, str):
            from repro.faults import parse_fault_spec

            try:
                fields["faults"] = parse_fault_spec(faults)
            except ConfigError as exc:
                raise ProtocolError(f"invalid fault spec: {exc}") from exc
        else:
            fields["faults"] = _nested(
                "faults", faults, FaultConfig, _FAULT_FIELDS)
        fields["meter"] = _nested(
            "meter", fields.get("meter"), MeterConfig, _METER_FIELDS)
        try:
            return RunSpec(**fields)
        except (ConfigError, TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid run spec: {exc}") from exc
    if kind == "sched":
        unknown = set(fields) - _SCHED_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown sched-spec field(s): {', '.join(sorted(unknown))}"
            )
        apps = fields.get("apps")
        if apps is not None:
            if not isinstance(apps, (list, tuple)) or not all(
                isinstance(a, str) for a in apps
            ):
                raise ProtocolError("sched 'apps' must be a list of strings")
            fields["apps"] = tuple(apps)
        predictor = fields.get("predictor")
        if predictor is not None:
            if not isinstance(predictor, dict):
                raise ProtocolError(
                    "sched 'predictor' must be a predictor-model payload "
                    "object or null"
                )
            try:
                fields["predictor"] = PredictorModel.from_payload(predictor)
            except (ConfigError, KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"invalid sched predictor: {exc}") from exc
        try:
            return SchedSpec(**fields)
        except (ConfigError, TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid sched spec: {exc}") from exc
    if kind == "cosched":
        unknown = set(fields) - _COSCHED_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown cosched-spec field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return CoschedSpec(**fields)
        except (ConfigError, TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid cosched spec: {exc}") from exc
    raise ProtocolError(
        f"unknown spec kind {kind!r} (one of: cosched, run, sched)"
    )


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def _require_str(frame: dict[str, Any], key: str) -> str:
    value = frame.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{frame.get('op')!r} requires a string {key!r}")
    return value


def validate_request(frame: dict[str, Any]) -> dict[str, Any]:
    """Shape-check one request frame; returns it unchanged if valid."""
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request frame requires a string 'op'")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (one of: {', '.join(sorted(OPS))})"
        )
    if op == "submit":
        if "spec" not in frame:
            raise ProtocolError("'submit' requires a 'spec' payload")
        client = frame.get("client", "")
        if not isinstance(client, str):
            raise ProtocolError("'client' must be a string")
    elif op in ("status", "result", "cancel"):
        _require_str(frame, "job")
        timeout = frame.get("timeout_s")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("'timeout_s' must be a number")
    elif op == "shutdown":
        drain = frame.get("drain", True)
        if not isinstance(drain, bool):
            raise ProtocolError("'drain' must be a boolean")
    return frame


def error_response(op: Any, error: str, *, reason: str = "",
                   retry_after_s: float = 0.0) -> dict[str, Any]:
    """The uniform ``ok: false`` response frame."""
    resp: dict[str, Any] = {"ok": False, "error": error}
    if isinstance(op, str):
        resp["op"] = op
    if reason:
        resp["reason"] = reason
    if retry_after_s > 0:
        resp["retry_after_s"] = retry_after_s
    return resp
