"""Write-ahead JSONL journal: accepted jobs survive a service crash.

Every job transition is appended *before* the client learns about it,
one JSON object per line::

    {"ev": "accepted", "job": "j-000001", "digest": "…", "kind": "run",
     "client": "cli", "spec": {…}, "t": 1754650000.123}

A restarted service replays the file: jobs whose last event is
non-terminal are resurrected (spec included in their ``accepted`` /
``attached`` line) and re-admitted, which — together with the result
cache's digest idempotence — gives every accepted job at-least-once
execution and exactly-once *measured* results.

The journal holds an exclusive ``flock`` for the service's lifetime, so
two services can never interleave writes into one journal.  Reads
tolerate a torn final line (the service died mid-append); everything
before it is intact by construction.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.errors import ServiceError

try:  # POSIX only
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Events that end a job's lifecycle; anything else is recoverable.
TERMINAL_EVENTS = frozenset({"finished", "failed", "dead", "cancelled"})


class Journal:
    """Append-only, crash-tolerant JSONL journal with single-writer lock."""

    def __init__(self, path: Union[str, Path], *, fsync: bool = False,
                 observe=None) -> None:
        self.path = Path(path)
        self.fsync = fsync
        #: Optional latency hook: called with the wall seconds each
        #: ``append`` spent writing/flushing/fsyncing.  Lets the service
        #: export journal durability latency without the journal knowing
        #: anything about metrics.
        self.observe = observe
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.flock(self._fh.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                self._fh.close()
                raise ServiceError(
                    f"journal {self.path} is locked by another service "
                    f"instance ({exc})"
                ) from exc

    # ------------------------------------------------------------------
    def append(self, ev: str, **fields: Any) -> None:
        """Durably record one event (flushed; fsync'd when configured)."""
        started = time.perf_counter()
        entry = {"ev": ev, "t": time.time(), **fields}
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        if self.observe is not None:
            self.observe(time.perf_counter() - started)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()  # releases the flock

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def iter_entries(path: Union[str, Path]) -> Iterator[dict[str, Any]]:
        """Yield every parseable entry; a torn tail line is skipped."""
        try:
            raw = Path(path).read_bytes()
        except OSError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn append from a crashed writer
            if isinstance(entry, dict) and "ev" in entry:
                yield entry

    @staticmethod
    def recover(path: Union[str, Path]) -> "RecoveryPlan":
        """Fold the journal into the set of jobs a restart must finish."""
        jobs: dict[str, dict[str, Any]] = {}
        order: list[str] = []
        max_seq = 0
        for entry in Journal.iter_entries(path):
            job_id = entry.get("job")
            if not isinstance(job_id, str):
                continue
            seq = _job_seq(job_id)
            if seq is not None:
                max_seq = max(max_seq, seq)
            ev = entry["ev"]
            if ev in ("accepted", "attached", "recovered"):
                known = jobs.get(job_id)
                if known is None:
                    jobs[job_id] = {
                        "job": job_id,
                        "digest": entry.get("digest"),
                        "kind": entry.get("kind", "run"),
                        "client": entry.get("client", ""),
                        "spec": entry.get("spec"),
                        "clients": [entry.get("client", "")],
                        "terminal": False,
                    }
                    order.append(job_id)
                else:
                    known["clients"].append(entry.get("client", ""))
            elif job_id in jobs and ev in TERMINAL_EVENTS:
                jobs[job_id]["terminal"] = True
        pending = [jobs[j] for j in order
                   if not jobs[j]["terminal"] and jobs[j]["spec"] is not None]
        return RecoveryPlan(pending=pending, next_seq=max_seq + 1,
                            seen=len(jobs))


def _job_seq(job_id: str) -> Optional[int]:
    """The numeric suffix of a ``j-NNNNNN`` id (id allocation resumes)."""
    if job_id.startswith("j-"):
        try:
            return int(job_id[2:])
        except ValueError:
            return None
    return None


class RecoveryPlan:
    """What a restart owes its predecessor's clients."""

    def __init__(self, *, pending: list[dict[str, Any]], next_seq: int,
                 seen: int) -> None:
        #: Non-terminal jobs, journal order, each with its wire spec.
        self.pending = pending
        #: First job sequence number the new incarnation may allocate.
        self.next_seq = next_seq
        #: Total distinct jobs the journal mentions (diagnostics).
        self.seen = seen
