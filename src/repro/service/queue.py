"""Bounded admission queue with digest-level dedup.

The queue never buffers beyond its depth: a full queue raises
:class:`~repro.errors.AdmissionError` so the server can answer with an
explicit ``retry_after_s`` instead of letting latency hide in an
unbounded backlog.  Dedup is structural — at most one *active*
(queued or running) job per digest is ever tracked, so a duplicate
submission attaches to the existing job rather than occupying a second
slot.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.errors import AdmissionError
from repro.service.jobs import Job


class AdmissionQueue:
    """FIFO of queued jobs plus the digest index of all active jobs."""

    def __init__(self, depth: int, *, retry_after_s: float = 0.5) -> None:
        if depth < 1:
            raise AdmissionError(
                f"queue depth must be >= 1, got {depth!r}",
                reason="config",
            )
        self.depth = depth
        self.retry_after_s = retry_after_s
        self._fifo: deque[Job] = deque()
        #: digest -> job, for every job that is queued or running.
        self._active: dict[str, Job] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._fifo)

    @property
    def in_flight(self) -> int:
        """Active jobs currently *not* in the FIFO (i.e. running)."""
        return len(self._active) - len(self._fifo)

    def active_for(self, digest: str) -> Optional[Job]:
        """The queued-or-running job for ``digest``, if any (dedup hook)."""
        return self._active.get(digest)

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Admit ``job`` at the tail; full queues shed loudly."""
        if len(self._fifo) >= self.depth:
            raise AdmissionError(
                f"admission queue full ({self.depth} queued)",
                reason="queue-full",
                retry_after_s=self.retry_after_s,
            )
        self._fifo.append(job)
        self._active[job.digest] = job

    def requeue(self, job: Job) -> None:
        """Put a redelivered job back at the *head* (it already waited).

        Redeliveries bypass the depth bound: the job was admitted once
        and its slot accounting must not shed it on the way back in.
        """
        self._fifo.appendleft(job)
        self._active[job.digest] = job

    def pop(self) -> Optional[Job]:
        """Next job to run, or None.  The digest stays active until done."""
        if not self._fifo:
            return None
        return self._fifo.popleft()

    def finish(self, job: Job) -> None:
        """Drop ``job`` from the active index once it is terminal."""
        current = self._active.get(job.digest)
        if current is job:
            del self._active[job.digest]

    def remove(self, job: Job) -> bool:
        """Remove a still-queued job (cancellation); False if not queued."""
        try:
            self._fifo.remove(job)
        except ValueError:
            return False
        self.finish(job)
        return True
