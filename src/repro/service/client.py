"""Blocking TCP client for the experiment service.

The CLI's ``repro-paper submit``, the test suite, the smoke driver and
the chaos benchmark all talk to the service through this one class, so
protocol drift shows up in exactly one place.  One client = one
connection; requests are strictly request/response except for
:meth:`events`, which dedicates the connection to the telemetry stream.
"""

from __future__ import annotations

import socket
import sys
from typing import Any, Iterator, Optional

from repro.errors import ServiceError
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    spec_to_wire,
)


class ServiceClient:
    """Synchronous NDJSON client; safe for one thread at a time."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7823,
        *,
        name: str = "client",
        connect_timeout: float = 10.0,
        timeout: Optional[float] = None,
    ) -> None:
        self.name = name
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {host}:{port}: {exc}") from exc
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one frame, return the service's response frame."""
        self._sock.sendall(encode_frame(frame))
        return self._read()

    def _read(self) -> dict[str, Any]:
        line = self._rfile.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServiceError("connection closed by service")
        return decode_frame(line)

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "service refused the request"))
        return response

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self._checked(self.request({"op": "ping"}))

    def submit(self, spec: Any) -> dict[str, Any]:
        """Submit a spec; the raw response (may be a shed, check ``ok``)."""
        return self.request({
            "op": "submit",
            "client": self.name,
            "spec": spec_to_wire(spec),
        })

    def status(self, job: str) -> dict[str, Any]:
        return self._checked(self.request({"op": "status", "job": job}))

    def result(self, job: str,
               timeout_s: Optional[float] = None) -> dict[str, Any]:
        """Block until ``job`` is terminal (or ``timeout_s``)."""
        frame: dict[str, Any] = {"op": "result", "job": job}
        if timeout_s is not None:
            frame["timeout_s"] = timeout_s
        return self._checked(self.request(frame))

    def cancel(self, job: str) -> dict[str, Any]:
        return self._checked(self.request({"op": "cancel", "job": job}))

    def stats(self) -> dict[str, Any]:
        return self._checked(self.request({"op": "stats"}))

    def metrics(self) -> dict[str, Any]:
        """Observability frame: Prometheus text, snapshot JSON, top spans."""
        return self._checked(self.request({"op": "metrics"}))

    def shutdown(self, *, drain: bool = True) -> dict[str, Any]:
        return self._checked(
            self.request({"op": "shutdown", "drain": drain}))

    def submit_and_wait(self, spec: Any,
                        timeout_s: Optional[float] = None) -> dict[str, Any]:
        """Submit then block for the terminal snapshot (sheds raise)."""
        response = self._checked(self.submit(spec))
        if response.get("state") in ("done", "failed", "dead", "cancelled"):
            return response
        return self.result(response["job"], timeout_s)

    def events(self) -> Iterator[dict[str, Any]]:
        """Dedicate this connection to the telemetry stream.

        Subscribes immediately (events emitted after this call returns
        are captured, even before the first ``next()``), then yields
        event frames until the service closes the connection.  Do not
        interleave other requests on this client afterwards.
        """
        self._checked(self.request({"op": "stream"}))

        def _iterate() -> Iterator[dict[str, Any]]:
            while True:
                try:
                    frame = self._read()
                except (ServiceError, OSError):
                    return
                if "event" in frame:
                    yield frame

        return _iterate()


class ServiceEventPrinter:
    """Telemetry sink that narrates service events, one line each."""

    def __init__(self, stream: Any = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def handle(self, event: Any) -> None:
        name = type(event).__name__
        if not name.startswith(("Service", "Job", "Worker")):
            return  # harness events (and gauge chatter) stay quiet here
        import dataclasses

        fields = " ".join(
            f"{key}={value}" for key, value in
            dataclasses.asdict(event).items())
        print(f"[service] {name} {fields}", file=self.stream, flush=True)
