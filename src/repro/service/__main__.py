"""``python -m repro.service`` — run the experiment service."""

import sys

from repro.service.server import main

if __name__ == "__main__":
    sys.exit(main())
