"""Killable per-job workers driving the harness execution core.

Each job runs in a *fresh* child process via
:func:`repro.harness.executor.run_spec_subprocess` — unlike a shared
``ProcessPoolExecutor`` worker, a fresh process can be killed on
timeout without collateral damage, and its death is attributable to
exactly one job (which is what makes redelivery counting and poison
quarantine sound).

Inside the child the spec goes through a one-shot
:class:`~repro.harness.executor.BatchExecutor` with the service's
:class:`~repro.harness.cache.ResultCache` attached: cache-first lookup,
execution, and the locked ledger append all happen on the worker side,
so the parent service never blocks on a measurement and concurrent
workers exercise the cache's multi-writer guarantees for real.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import WorkerCrashed, WorkerTimeout
from repro.harness.executor import run_spec_subprocess
from repro.service.protocol import Spec


def _service_entry(spec: Spec, cache_root: Optional[str] = None):
    """Child-process entry: cache-first execute via the harness core."""
    from repro.harness import BatchExecutor, ResultCache

    cache = ResultCache(root=cache_root) if cache_root else None
    harness = BatchExecutor(workers=0, cache=cache, retries=0)
    return harness.run_one(spec, sweep="service")


@dataclass
class WorkerOutcome:
    """What one execution attempt produced (exactly one field set)."""

    record: object = None
    #: "ok" | "timeout" | "crash" | "error"
    kind: str = "ok"
    error: str = ""
    pid: int = 0


class WorkerRunner:
    """Synchronous single-job runner with an in-flight pid registry.

    The server calls :meth:`run` from executor threads (one per busy
    slot); chaos tests and the ``stats`` op read :meth:`active_pids` to
    find live worker processes to observe — or kill.
    """

    def __init__(
        self,
        *,
        timeout_s: Optional[float] = None,
        cache_root: Optional[str] = None,
        entry: Optional[Callable] = None,
    ) -> None:
        self.timeout_s = timeout_s
        self.cache_root = cache_root
        self._entry = entry
        self._lock = threading.Lock()
        self._pids: dict[str, int] = {}

    def active_pids(self) -> dict[str, int]:
        with self._lock:
            return dict(self._pids)

    def _register(self, job_id: str, pid: int,
                  notify: Optional[Callable[[int], None]]) -> None:
        with self._lock:
            self._pids[job_id] = pid
        if notify is not None:
            notify(pid)

    def run(self, job_id: str, spec: Spec,
            *, on_start: Optional[Callable[[int], None]] = None
            ) -> WorkerOutcome:
        """Execute ``spec`` in a fresh worker; never raises."""
        entry = self._entry
        if entry is None:
            entry = functools.partial(_service_entry,
                                      cache_root=self.cache_root)
        pid_box = {"pid": 0}

        def _on_start(pid: int) -> None:
            pid_box["pid"] = pid
            self._register(job_id, pid, on_start)

        try:
            record = run_spec_subprocess(
                spec,
                timeout_s=self.timeout_s,
                entry=entry,
                on_start=_on_start,
            )
            return WorkerOutcome(record=record, kind="ok",
                                 pid=pid_box["pid"])
        except WorkerTimeout as exc:
            return WorkerOutcome(kind="timeout", error=str(exc),
                                 pid=pid_box["pid"])
        except WorkerCrashed as exc:
            return WorkerOutcome(kind="crash", error=str(exc),
                                 pid=pid_box["pid"])
        except Exception as exc:  # noqa: BLE001 - spec-level failure
            return WorkerOutcome(kind="error", error=repr(exc),
                                 pid=pid_box["pid"])
        finally:
            with self._lock:
                self._pids.pop(job_id, None)
