"""Per-client token-bucket submission quotas.

Fairness under "millions of users" traffic starts with not letting one
chatty client starve the admission queue.  Each client id gets a token
bucket: ``burst`` tokens capacity, refilled at ``rate`` tokens/second;
one submission costs one token.  A dry bucket yields the exact time
until the next token — which the server hands back as ``retry_after_s``,
so clients can back off precisely instead of hammering.

The clock is injectable, so quota behaviour is unit-testable without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict


class TokenBucket:
    """Classic token bucket; monotonic-clock based, no background task."""

    def __init__(self, rate: float, burst: float,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be positive, got {rate!r}/{burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> float:
        """Take ``n`` tokens; 0.0 on success, else seconds until refill.

        A positive return means *nothing was taken* — the caller sheds
        the request and reports the wait.
        """
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


class ClientQuotas:
    """Lazy per-client bucket map with shared rate/burst parameters."""

    def __init__(self, rate: float, burst: float,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, client: str) -> float:
        """0.0 if ``client`` may submit now, else the retry-after delay."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock)
        return bucket.try_take()

    def __len__(self) -> int:
        return len(self._buckets)
