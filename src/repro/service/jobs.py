"""Job objects and their lifecycle state machine.

::

    QUEUED ──> RUNNING ──> DONE                (measured, or cache/dedup)
       │          │ ├────> FAILED              (spec error, retries spent)
       │          │ └────> DEAD                (timeout/poison dead-letter)
       │          └──────> QUEUED              (worker crash, redelivery)
       └─────────────────> CANCELLED

``DONE`` / ``FAILED`` / ``DEAD`` / ``CANCELLED`` are terminal; the
journal records every transition so a restarted service can finish what
an earlier incarnation accepted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.service.protocol import Spec, spec_to_wire


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    DEAD = "dead"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.DEAD, JobState.CANCELLED}
)


@dataclass
class Job:
    """One accepted submission, shared by every subscriber of its digest."""

    id: str
    spec: Spec
    kind: str
    client: str
    state: JobState = JobState.QUEUED
    #: Worker launches (including ones that crashed or timed out).
    attempts: int = 0
    #: Failed attempts (spec error or timeout) — drives the retry budget.
    failures: int = 0
    #: Times the job was requeued because its worker process died.
    redeliveries: int = 0
    #: Set by ``cancel`` while RUNNING; the crash path honours it.
    cancel_requested: bool = False
    #: Clients that submitted this digest (primary first).
    subscribers: list[str] = field(default_factory=list)
    #: How the result was produced: executed | cache | recovered.
    source: str = ""
    error: Optional[str] = None
    #: Scalar result summary (digest-addressed; the full record lives in
    #: the result cache).
    result: Optional[dict[str, Any]] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Worker pid while RUNNING (chaos tooling targets this).
    pid: Optional[int] = None

    @property
    def digest(self) -> str:
        return self.spec.digest

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe status projection for ``status`` / ``result`` ops."""
        snap: dict[str, Any] = {
            "job": self.id,
            "digest": self.digest,
            "kind": self.kind,
            "label": self.spec.describe(),
            "state": self.state.value,
            "attempts": self.attempts,
            "redeliveries": self.redeliveries,
            "subscribers": len(self.subscribers),
            "source": self.source,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            snap["started_at"] = self.started_at
        if self.finished_at is not None:
            snap["finished_at"] = self.finished_at
        if self.pid is not None and self.state is JobState.RUNNING:
            snap["pid"] = self.pid
        if self.error is not None:
            snap["error"] = self.error
        if self.result is not None:
            snap["result"] = self.result
        return snap

    def journal_fields(self) -> dict[str, Any]:
        """The fields the write-ahead journal needs to resurrect this job."""
        return {
            "job": self.id,
            "digest": self.digest,
            "kind": self.kind,
            "client": self.client,
            "spec": spec_to_wire(self.spec),
        }


def result_summary(record: Any) -> dict[str, Any]:
    """Scalar summary of a measurement/sched record for the wire."""
    summary: dict[str, Any] = {}
    for key in ("time_s", "energy_j", "watts", "wall_s"):
        value = getattr(record, key, None)
        if value is not None:
            summary[key] = float(value)
    return summary
