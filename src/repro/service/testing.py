"""In-process service harness for tests, smoke runs and benchmarks.

Runs an :class:`~repro.service.server.ExperimentService` on a dedicated
event-loop thread so synchronous callers (pytest, the smoke driver, the
chaos benchmark) can talk to a *real* TCP endpoint without managing a
child process.  The crash-recovery tests, which must SIGKILL the whole
service, use a subprocess instead — this helper is for everything else.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

from repro.errors import ServiceError
from repro.harness.telemetry import TelemetryBus
from repro.service.server import ExperimentService, ServiceConfig


class ServiceThread:
    """Own-thread service with a blocking start/stop lifecycle."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        bus: Optional[TelemetryBus] = None,
        worker_entry: Any = None,
    ) -> None:
        self.config = config
        self.bus = bus
        self.worker_entry = worker_entry
        self.service: Optional[ExperimentService] = None
        self.port: int = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 15.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="svc-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("service did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self.service = ExperimentService(
            self.config, bus=self.bus, worker_entry=self.worker_entry)
        try:
            await self.service.start()
            self.port = self.service.port
        except BaseException as exc:  # startup failure -> re-raised in start()
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.service.serve_forever()

    # ------------------------------------------------------------------
    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        if (self.service is None or self._loop is None
                or not self._loop.is_running()):
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(drain=drain), self._loop)
        future.result(timeout)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
