"""Event records and handles for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
insertion counter, so two events at the same time and priority fire in the
order they were scheduled — this makes every simulation run bit-for-bit
deterministic, which the test suite relies on heavily.

Hot-path layout
---------------
The engine's heap stores plain ``(time, priority, seq, event)`` tuples
rather than the :class:`ScheduledEvent` objects themselves.  Tuple
comparison is implemented in C and — because ``seq`` is unique — never
falls through to comparing the event objects, so :class:`ScheduledEvent`
needs no ordering protocol at all and can be a bare ``__slots__`` record.
This is worth >1.5x on event-drain microbenchmarks versus the previous
``dataclass(order=True)`` design, whose generated ``__lt__`` built a
fresh tuple pair on every heap sift comparison.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class Priority(enum.IntEnum):
    """Tie-break priority for events that fire at the same instant.

    Lower values fire first.  The distinct bands matter at phase
    boundaries: when a work segment completes at exactly the same instant a
    daemon tick fires, the completion must be processed first so the tick
    observes the post-completion machine state (the real RCRdaemon samples
    hardware counters that have already committed).
    """

    #: Machine-state updates: segment completions, duty-cycle commits.
    MACHINE = 0
    #: Runtime scheduler actions: task dispatch, steal retries.
    SCHEDULER = 10
    #: Measurement and control daemons (RCRdaemon, throttle controller).
    DAEMON = 20
    #: User/experiment callbacks (simulation-end hooks, probes).
    USER = 30


class ScheduledEvent:
    """A callback scheduled at an absolute simulation time.

    ``cancelled`` doubles as the *consumed* flag: the engine sets it when
    the event fires, so a handle cancelled after its event already ran is
    a no-op instead of corrupting the engine's dead-entry accounting (the
    event is no longer in the heap, so there is nothing to compact away).
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"ScheduledEvent(t={self.time!r}, prio={self.priority}, "
            f"seq={self.seq}, label={self.label!r}, {state})"
        )


class EventHandle:
    """Cancellation handle returned by :meth:`repro.sim.engine.Engine.schedule`.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1), which matters because the fluid
    execution model cancels and reschedules the "next segment completion"
    event on almost every state change.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute time the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op after firing."""
        self._event.cancelled = True
