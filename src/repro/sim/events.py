"""Event records and handles for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
insertion counter, so two events at the same time and priority fire in the
order they were scheduled — this makes every simulation run bit-for-bit
deterministic, which the test suite relies on heavily.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class Priority(enum.IntEnum):
    """Tie-break priority for events that fire at the same instant.

    Lower values fire first.  The distinct bands matter at phase
    boundaries: when a work segment completes at exactly the same instant a
    daemon tick fires, the completion must be processed first so the tick
    observes the post-completion machine state (the real RCRdaemon samples
    hardware counters that have already committed).
    """

    #: Machine-state updates: segment completions, duty-cycle commits.
    MACHINE = 0
    #: Runtime scheduler actions: task dispatch, steal retries.
    SCHEDULER = 10
    #: Measurement and control daemons (RCRdaemon, throttle controller).
    DAEMON = 20
    #: User/experiment callbacks (simulation-end hooks, probes).
    USER = 30


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulation time."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation handle returned by :meth:`repro.sim.engine.Engine.schedule`.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1), which matters because the fluid
    execution model cancels and reschedules the "next segment completion"
    event on almost every state change.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute time the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
