"""The discrete-event engine.

A classic event-heap design: :meth:`Engine.schedule` pushes a callback at an
absolute or relative time; :meth:`Engine.run` pops events in
``(time, priority, seq)`` order, advances the clock, and invokes callbacks.
Everything else in the simulator — core execution, daemon ticks, throttle
actuation — is expressed as these callbacks.

Design notes
------------
* Events firing at identical timestamps are ordered by the
  :class:`~repro.sim.events.Priority` band, then insertion order, so runs
  are fully deterministic.
* The heap holds ``(time, priority, seq, event)`` tuples (see
  :mod:`repro.sim.events`): comparisons stay in C and never touch the
  event objects, which is the single biggest per-event cost saving.
* Cancellation is lazy (see :class:`~repro.sim.events.EventHandle`): the
  heap may hold dead entries which are skipped on pop.  A compaction pass
  runs when dead entries dominate, keeping memory bounded for long runs.
  Firing an event marks it consumed, so a late ``cancel()`` on an
  already-fired handle cannot skew the dead-entry count (that skew
  previously made :attr:`Engine.pending` drift negative and triggered
  compaction passes over heaps with nothing to compact).
* Callbacks may schedule further events, including at the current time.
  A callback scheduling an event in the past is an error.
* :meth:`Engine.run` drains same-timestamp batches without touching the
  clock between them: the clock only advances when the next event's time
  actually differs, so completion bursts and daemon phase boundaries (many
  events at one instant) pay one clock update per instant, not per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import EventHandle, Priority, ScheduledEvent
from repro.sim.trace import Trace

#: Compact the heap when more than this fraction of entries are cancelled
#: (and the heap is big enough for the O(n) pass to be worth amortising).
_COMPACT_RATIO = 0.5
_COMPACT_MIN_SIZE = 1024


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, *, trace: Optional[Trace] = None, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: Min-heap of ``(time, priority, seq, ScheduledEvent)`` tuples.
        self._heap: list[tuple[float, int, int, ScheduledEvent]] = []
        self._seq = 0
        self._cancelled = 0
        self._fired = 0
        self._running = False
        self._stop_requested = False
        #: Read-only observers called as ``probe(time, event)`` after each
        #: event callback returns.  The list is mutated in place so the
        #: hoisted alias in :meth:`run` observes attach/detach mid-run.
        self._probes: list[Callable[[float, ScheduledEvent], Any]] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._heap) - self._cancelled

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = Priority.USER,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay!r}")
        return self.schedule_at(self.clock.now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = Priority.USER,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self.clock.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        prio = int(priority)
        event = ScheduledEvent(time, prio, seq, callback, label)
        heapq.heappush(self._heap, (time, prio, seq, event))
        return _TrackingHandle(event, self)

    # ------------------------------------------------------------------
    # probes (observation hooks)
    # ------------------------------------------------------------------
    def add_probe(self, probe: Callable[[float, ScheduledEvent], Any]) -> None:
        """Attach a read-only observer fired after every event callback.

        Probes must not mutate simulator state or schedule events; they
        exist for invariant checkers and instrumentation.  The engine
        fires them as ``probe(time, event)`` once the event's callback has
        returned, so the model is in a consistent post-event state.
        """
        self._probes.append(probe)

    def remove_probe(self, probe: Callable[[float, ScheduledEvent], Any]) -> None:
        """Detach a probe added with :meth:`add_probe` (no-op if absent)."""
        try:
            self._probes.remove(probe)
        except ValueError:
            pass

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            len(self._heap) >= _COMPACT_MIN_SIZE
            and self._cancelled > _COMPACT_RATIO * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  O(n).

        Heapify over the surviving ``(time, priority, seq, event)`` tuples
        restores a valid heap under the same total order the entries were
        pushed with, so same-timestamp events keep their exact
        ``(priority, seq)`` firing order across a compaction.

        The list is mutated *in place* (slice assignment), never rebound:
        :meth:`run` holds a local alias to it across callbacks, and a
        callback's ``cancel()`` can trigger compaction mid-run.  Rebinding
        would strand the run loop on a stale list while new events land in
        the fresh one.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._skip_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def _skip_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue was empty."""
        self._skip_dead()
        if not self._heap:
            return False
        time, _prio, _seq, event = heapq.heappop(self._heap)
        self.clock.advance_to(time)
        self._fired += 1
        event.cancelled = True  # consumed: late cancel() is now a no-op
        if self.trace.enabled:
            self.trace.record(time, "event", event.label)
        event.callback()
        if self._probes:
            for probe in self._probes:
                probe(time, event)
        return True

    def run(self, until: Optional[float] = None, *, max_events: Optional[int] = None) -> float:
        """Run events until the queue empties, ``until`` is reached, or stop().

        Returns the simulation time at exit.  When ``until`` is given and the
        queue drains earlier, the clock is advanced to ``until`` so that
        integrations (energy, temperature) cover the full requested window.

        This is the simulator's innermost loop; it inlines dead-entry
        skipping and batches same-timestamp drains (one clock advance per
        distinct timestamp) rather than delegating to :meth:`step`.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        self._running = True
        self._stop_requested = False
        if max_events is None:
            budget = -1  # negative: unlimited
        else:
            budget = max_events if max_events > 0 else 0
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        trace = self.trace
        fired = self._fired
        now = clock.now
        probes = self._probes  # in-place list: alias sees attach/detach
        try:
            while not self._stop_requested:
                head = None
                while heap:
                    head = heap[0]
                    if head[3].cancelled:
                        heappop(heap)
                        self._cancelled -= 1
                        head = None
                    else:
                        break
                if head is None:
                    break
                time = head[0]
                if until is not None and time > until:
                    break
                if budget == 0:
                    break
                budget -= 1
                heappop(heap)
                event = head[3]
                if time != now:
                    clock.advance_to(time)
                    now = time
                fired += 1
                event.cancelled = True  # consumed: late cancel() is a no-op
                if trace.enabled:
                    trace.record(time, "event", event.label)
                event.callback()
                if probes:
                    for probe in probes:
                        probe(time, event)
            if until is not None and now < until and not self._stop_requested:
                clock.advance_to(until)
        finally:
            self._fired = fired
            self._running = False
        return clock.now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stop_requested = True


class _TrackingHandle(EventHandle):
    """EventHandle that informs the engine of cancellations for compaction."""

    __slots__ = ("_engine",)

    def __init__(self, event: ScheduledEvent, engine: Engine) -> None:
        super().__init__(event)
        self._engine = engine

    def cancel(self) -> None:
        if not self._event.cancelled:
            self._event.cancelled = True
            self._engine._note_cancel()
