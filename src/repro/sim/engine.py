"""The discrete-event engine.

A classic event-heap design: :meth:`Engine.schedule` pushes a callback at an
absolute or relative time; :meth:`Engine.run` pops events in
``(time, priority, seq)`` order, advances the clock, and invokes callbacks.
Everything else in the simulator — core execution, daemon ticks, throttle
actuation — is expressed as these callbacks.

Design notes
------------
* Events firing at identical timestamps are ordered by the
  :class:`~repro.sim.events.Priority` band, then insertion order, so runs
  are fully deterministic.
* Cancellation is lazy (see :class:`~repro.sim.events.EventHandle`): the
  heap may hold dead entries which are skipped on pop.  A compaction pass
  runs when dead entries dominate, keeping memory bounded for long runs.
* Callbacks may schedule further events, including at the current time.
  A callback scheduling an event in the past is an error.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import EventHandle, Priority, ScheduledEvent
from repro.sim.trace import Trace

#: Compact the heap when more than this fraction of entries are cancelled
#: (and the heap is big enough for the O(n) pass to be worth amortising).
_COMPACT_RATIO = 0.5
_COMPACT_MIN_SIZE = 1024


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, *, trace: Optional[Trace] = None, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._cancelled = 0
        self._fired = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._heap) - self._cancelled

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = Priority.USER,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay!r}")
        return self.schedule_at(self.clock.now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = Priority.USER,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self.clock.now!r}"
            )
        event = ScheduledEvent(time=time, priority=int(priority), seq=self._seq,
                               callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return _TrackingHandle(event, self)

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            len(self._heap) >= _COMPACT_MIN_SIZE
            and self._cancelled > _COMPACT_RATIO * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  O(n)."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._skip_dead()
        if not self._heap:
            return None
        return self._heap[0].time

    def _skip_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue was empty."""
        self._skip_dead()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        self._fired += 1
        if self.trace.enabled:
            self.trace.record(event.time, "event", event.label)
        event.callback()
        return True

    def run(self, until: Optional[float] = None, *, max_events: Optional[int] = None) -> float:
        """Run events until the queue empties, ``until`` is reached, or stop().

        Returns the simulation time at exit.  When ``until`` is given and the
        queue drains earlier, the clock is advanced to ``until`` so that
        integrations (energy, temperature) cover the full requested window.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        self._running = True
        self._stop_requested = False
        budget = max_events
        try:
            while not self._stop_requested:
                if budget is not None:
                    if budget <= 0:
                        break
                self._skip_dead()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
                if budget is not None:
                    budget -= 1
            if until is not None and self.clock.now < until and not self._stop_requested:
                self.clock.advance_to(until)
        finally:
            self._running = False
        return self.clock.now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stop_requested = True


class _TrackingHandle(EventHandle):
    """EventHandle that informs the engine of cancellations for compaction."""

    __slots__ = ("_engine",)

    def __init__(self, event: ScheduledEvent, engine: Engine) -> None:
        super().__init__(event)
        self._engine = engine

    def cancel(self) -> None:
        if not self._event.cancelled:
            self._event.cancelled = True
            self._engine._note_cancel()
