"""Seeded random-number streams.

Each subsystem that needs randomness (work-stealing victim selection, task
cost jitter, measurement noise) gets its *own named stream* derived from one
root seed via ``numpy.random.SeedSequence.spawn``.  This guarantees that:

* the whole simulation is reproducible from a single integer seed, and
* adding a new consumer of randomness does not perturb the streams of
  existing consumers (streams are keyed by name, not draw order).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class RngStreams:
    """A family of independent, named ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was created from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The stream's seed is derived from ``(root_seed, name)`` so the same
        name always yields the same sequence for a given root seed,
        independent of creation order.
        """
        if not name:
            raise SimulationError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            # Derive per-name entropy from the name bytes so ordering of
            # stream() calls cannot matter.
            name_entropy = list(name.encode("utf-8"))
            seq = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(name_entropy)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def names(self) -> list[str]:
        """Names of all streams created so far."""
        return sorted(self._streams)
