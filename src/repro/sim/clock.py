"""Simulation clock.

A single monotonically non-decreasing notion of "now", owned by the engine
and read by every component.  Keeping it in its own object (rather than a
bare float on the engine) lets hardware models hold a reference to the clock
without holding a reference to the engine, which keeps the dependency graph
acyclic: ``hw`` depends on ``Clock``, ``Engine`` drives ``Clock``.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic simulation clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before zero, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Only the engine calls this.  Moving backwards is an engine bug and
        raises :class:`SimulationError` immediately rather than corrupting
        downstream integrations (energy accumulators integrate power over
        ``dt`` and silently produce negative energy on a backwards clock).
        """
        if t < self._now:
            raise SimulationError(
                f"clock moved backwards: {self._now!r} -> {t!r}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now!r})"
