"""Lightweight simulation tracing.

The trace is a bounded, append-only log of ``(time, category, detail)``
records.  It exists for three consumers:

* tests, which assert on ordering and occurrence of machine/runtime events;
* the experiment harness, which extracts per-phase timelines for
  EXPERIMENTS.md;
* debugging, via :meth:`Trace.format`.

Tracing is disabled by default: the engine checks ``trace.enabled`` before
formatting anything, so a disabled trace costs one attribute read per event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    detail: str


class Trace:
    """Bounded in-memory event trace."""

    def __init__(self, *, enabled: bool = True, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.enabled = enabled
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0

    def record(self, time: float, category: str, detail: str = "") -> None:
        """Append a record if tracing is enabled."""
        if not self.enabled:
            return
        if len(self._records) == self._records.maxlen:
            self._dropped += 1
        self._records.append(TraceRecord(time, category, detail))

    @property
    def dropped(self) -> int:
        """Number of records evicted because the buffer filled."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, category: str) -> list[TraceRecord]:
        """All records in ``category``, oldest first."""
        return [r for r in self._records if r.category == category]

    def last(self, category: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record, optionally restricted to one category."""
        if category is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.category == category:
                return record
        return None

    def clear(self) -> None:
        """Drop all records (does not reset the dropped counter)."""
        self._records.clear()

    def format(self, limit: int = 50) -> str:
        """Human-readable tail of the trace for debugging."""
        tail = list(self._records)[-limit:]
        return "\n".join(f"[{r.time:12.6f}s] {r.category:20s} {r.detail}" for r in tail)
