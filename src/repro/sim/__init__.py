"""Discrete-event simulation engine.

The engine is deliberately small: a time-ordered event heap with
deterministic tie-breaking, a simulation clock, an event trace, and seeded
random-number streams.  All hardware and runtime behaviour in
:mod:`repro.hw` and :mod:`repro.qthreads` is built as callbacks scheduled on
this engine.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, Priority
from repro.sim.rng import RngStreams
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Clock",
    "Engine",
    "EventHandle",
    "Priority",
    "RngStreams",
    "Trace",
    "TraceRecord",
]
