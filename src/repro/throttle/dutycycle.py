"""Low-power actuators: duty-cycle modulation, DVFS, OS idle.

The paper argues for per-core duty-cycle modulation over DVFS
(Section IV): DVFS "requires tens of thousands of cycles to adjust
voltage" and "could only slow all cores or none, whereas our duty cycle
changes are per-core"; duty-cycle modification "takes only the amount of
time equivalent to approximately 250 memory operations".  It also
compares against turning threads off at the OS level, which saves more
power but is slower to reverse (Table IV discussion).

These three actuators expose that design space for the ablation benches.
The duty-cycle actuator is the one the MAESTRO runtime itself uses
(workers call the MSR directly; see :mod:`repro.qthreads.worker`).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.hw.msr import (
    IA32_CLOCK_MODULATION,
    decode_clock_modulation,
    encode_clock_modulation,
)
from repro.hw.node import Node
from repro.sim.events import Priority

#: DVFS voltage transition cost, seconds ("tens of thousands of cycles";
#: ~50k cycles at 2.7 GHz, plus OS overhead).
DVFS_TRANSITION_S = 30e-6


def representable_duty(duty: float, *, steps: int = 32) -> bool:
    """True if ``duty`` survives the clock-modulation encode/decode round trip.

    Hardware can only realise duty cycles of the form ``level / steps``
    (or exactly 1.0, modulation off).  A throttle decision that commits a
    non-representable duty would silently run at a different speed than
    the policy asked for; the invariant checker uses this predicate to
    flag such decisions.
    """
    if not 0.0 < duty <= 1.0:
        return False
    return decode_clock_modulation(encode_clock_modulation(duty, steps=steps), steps=steps) == duty


class DutyCycleActuator:
    """Per-core clock modulation via IA32_CLOCK_MODULATION.

    Fast (≈250 memory operations, modelled by the node's MSR commit
    delay) and per-core — the properties the paper's throttler needs.
    """

    def __init__(self, node: Node) -> None:
        self.node = node
        self.writes = 0

    def set_duty(self, core: int, duty: float) -> None:
        """Request ``duty`` on one core (commits after actuation latency)."""
        self.node.msr.write_core(
            core,
            IA32_CLOCK_MODULATION,
            encode_clock_modulation(duty),
            privileged=True,
        )
        self.writes += 1

    def restore(self, core: int) -> None:
        """Restore full-speed operation on one core."""
        self.set_duty(core, 1.0)


class DvfsActuator:
    """Chip-global frequency scaling — the paper's unfavourable comparator.

    Two modelled drawbacks: the transition stalls (applies after a long
    latency), and the setting is *global* to the socket — every core slows,
    including the ones doing useful work.  Frequency scaling is modelled
    through the same per-core duty mechanism (a frequency ratio and a duty
    ratio stretch compute identically in the rate model), applied to all
    cores of the socket at once.
    """

    def __init__(self, node: Node, *, transition_s: float = DVFS_TRANSITION_S) -> None:
        self.node = node
        self.transition_s = transition_s
        self.transitions = 0

    def set_frequency_ratio(self, socket: int, ratio: float) -> None:
        """Scale every core of ``socket`` to ``ratio`` of nominal frequency."""
        if not (0.0 < ratio <= 1.0):
            raise SimulationError(f"frequency ratio must be in (0,1], got {ratio!r}")
        self.transitions += 1
        cores = list(self.node.topology.cores_in_socket(socket))

        def commit() -> None:
            for core in cores:
                self.node.set_duty(core, ratio)

        self.node.engine.schedule(
            self.transition_s, commit, priority=Priority.MACHINE,
            label=f"dvfs-commit socket={socket}",
        )

    def restore(self, socket: int) -> None:
        """Return the socket to nominal frequency (after transition cost)."""
        self.set_frequency_ratio(socket, 1.0)


class OsIdleActuator:
    """OS-level thread parking (deep C-state) — the most-savings comparator.

    "The execution time matched the 12 thread case, but turning the
    threads off at the OS level saved an additional 10.2 W and 519 J"
    (Table IV discussion).  Parking is cheap to model but in reality takes
    an OS scheduling round-trip, so the runtime cannot flicker it the way
    it can a duty cycle; experiments use it only for fixed configurations.
    """

    def __init__(self, node: Node) -> None:
        self.node = node

    def park(self, core: int) -> None:
        """Take a core offline (zero power)."""
        self.node.set_off(core)

    def unpark(self, core: int) -> None:
        """Bring a core back online (idle state)."""
        self.node.set_idle(core)
