"""Power clamping: enforce a node power bound (extension).

The paper's related work (Rountree et al. [25]) examines hardware-enforced
power bounds on Sandybridge and argues HPC is moving from performance
scheduling to *power scheduling*; the paper positions concurrency
throttling as a mechanism that "would operate well within a multi-node
power clamping environment" while noting its own goal is energy reduction,
not bound enforcement.  This module supplies that missing piece:

* :func:`encode_power_limit` / :func:`decode_power_limit` — the
  ``MSR_PKG_POWER_LIMIT`` register format (1/8-W units, enable bit), so
  clamp settings flow through the same MSR path as everything else;
* :class:`PowerClampController` — a feedback controller that keeps the
  node's measured power at or under a budget by adjusting the scheduler's
  active-thread limit each RCR window: over budget ⇒ shed threads; well
  under ⇒ restore them.

Unlike the MAESTRO energy controller, the clamp is *unconditional*: it
acts on power alone, because a bound is a bound — the cost is the
performance of efficient programs, which is exactly the trade-off the
paper's dual-metric policy exists to avoid when the goal is energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MeasurementError, SimulationError
from repro.hw.msr import MSR_PKG_POWER_LIMIT
from repro.qthreads.scheduler import Scheduler
from repro.rcr import meters
from repro.rcr.blackboard import Blackboard
from repro.sim.engine import Engine
from repro.sim.events import Priority

#: MSR_PKG_POWER_LIMIT stores the limit in 1/8-W units (bits 14:0) with an
#: enable bit at 15 (architectural PL1 layout, simplified).
_LIMIT_UNIT_W = 0.125
_ENABLE_BIT = 1 << 15
_LIMIT_MASK = 0x7FFF


def encode_power_limit(watts: float, *, enabled: bool = True) -> int:
    """Encode a per-package power limit for MSR_PKG_POWER_LIMIT."""
    if watts < 0:
        raise ValueError(f"power limit must be non-negative, got {watts!r}")
    raw = min(_LIMIT_MASK, int(round(watts / _LIMIT_UNIT_W)))
    return raw | (_ENABLE_BIT if enabled else 0)


def decode_power_limit(raw: int) -> tuple[float, bool]:
    """Decode MSR_PKG_POWER_LIMIT into (watts, enabled)."""
    if raw < 0:
        raise ValueError(f"register value must be non-negative, got {raw!r}")
    return (raw & _LIMIT_MASK) * _LIMIT_UNIT_W, bool(raw & _ENABLE_BIT)


@dataclass
class ClampDecision:
    """One controller evaluation (kept for tests/telemetry)."""

    time_s: float
    node_power_w: float
    budget_w: float
    active_limit: int


class PowerClampController:
    """Keep measured node power at or under ``budget_w``.

    Simple additive-increase / multiplicative-ish-decrease on the active
    thread count, evaluated once per RCR window:

    * power > budget          ⇒ shed threads proportionally to the excess;
    * power < 90% of budget   ⇒ restore one thread;
    * otherwise               ⇒ hold.

    The budget is also published to each socket's ``MSR_PKG_POWER_LIMIT``
    (half per socket) so tooling can read the active clamp the same way
    it would on real hardware.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        blackboard: Blackboard,
        budget_w: float,
        *,
        period_s: float = 0.1,
        min_threads: int = 1,
    ) -> None:
        if budget_w <= 0:
            raise SimulationError(f"power budget must be positive, got {budget_w!r}")
        if period_s <= 0:
            raise SimulationError(f"period must be positive, got {period_s!r}")
        self.engine = engine
        self.scheduler = scheduler
        self.blackboard = blackboard
        self.period_s = period_s
        self.min_threads = max(1, min_threads)
        self.max_threads = len(scheduler.workers)
        self._active_limit = self.max_threads
        self._running = False
        self._next_event = None
        self.decisions: list[ClampDecision] = []
        self._budget_w = 0.0
        self.set_budget(budget_w)

    # ------------------------------------------------------------------
    @property
    def budget_w(self) -> float:
        return self._budget_w

    def set_budget(self, budget_w: float) -> None:
        """Change the enforced budget (coordinator interface)."""
        if budget_w <= 0:
            raise SimulationError(f"power budget must be positive, got {budget_w!r}")
        self._budget_w = budget_w
        node = self.scheduler.node
        per_socket = budget_w / node.config.sockets
        for socket in range(node.config.sockets):
            node.msr.write_package(
                socket,
                MSR_PKG_POWER_LIMIT,
                encode_power_limit(per_socket),
                privileged=True,
            )

    @property
    def active_limit(self) -> int:
        """Threads currently allowed to run."""
        return self._active_limit

    @property
    def pressure(self) -> float:
        """Fraction of the node's threads the clamp is currently shedding.

        0.0 means the clamp is passive (full concurrency available);
        values approaching 1.0 mean the budget is forcing the node down
        to its minimum thread count.  The cluster scheduler's placement
        policies read this as the node's *clamp pressure*.
        """
        if self.max_threads <= 0:
            return 0.0
        return 1.0 - self._active_limit / self.max_threads

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise MeasurementError("power clamp already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _schedule_next(self) -> None:
        self._next_event = self.engine.schedule(
            self.period_s, self._tick, priority=Priority.DAEMON, label="clamp-tick"
        )

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate_once()
        self._schedule_next()

    def evaluate_once(self) -> ClampDecision:
        power = self.blackboard.read_value(meters.NODE_POWER_W, default=0.0)
        limit = self._active_limit
        if power > self._budget_w:
            # Shed in proportion to the overshoot; at least one thread.
            overshoot = power / self._budget_w - 1.0
            shed = max(1, int(round(overshoot * limit)))
            limit = max(self.min_threads, limit - shed)
        elif power < 0.9 * self._budget_w and limit < self.max_threads:
            limit += 1
        if limit != self._active_limit:
            self._active_limit = limit
            if limit >= self.max_threads:
                self.scheduler.release_throttle()
            else:
                self.scheduler.apply_throttle(limit)
        decision = ClampDecision(
            time_s=self.engine.now,
            node_power_w=power,
            budget_w=self._budget_w,
            active_limit=self._active_limit,
        )
        self.decisions.append(decision)
        return decision
