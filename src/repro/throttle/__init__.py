"""MAESTRO automatic dynamic concurrency throttling (paper Section IV).

Two cooperating pieces:

* :class:`~repro.throttle.policy.ThrottlePolicy` — the two-metric,
  three-band decision rule: socket power and memory concurrency are each
  classified High / Medium / Low against the paper's thresholds (75 W /
  50 W per socket; 75% / 25% of the socket's maximum outstanding memory
  references).  Both High engages throttling; both Low disengages it;
  the Medium band is a hysteresis dead-band "to avoid hysteresis effects
  that occur when observed values hover near the threshold";
* :class:`~repro.throttle.controller.ThrottleController` — the user-level
  daemon inside the runtime that wakes every 0.1 s, reads the RCR
  blackboard, applies the policy, and flips the scheduler's
  shepherd-local limits.

Actuation (per-core duty-cycle modulation to 1/32, and the DVFS/OS-idle
comparators for the ablation benches) lives in
:mod:`repro.throttle.dutycycle`.
"""

from repro.throttle.clamp import PowerClampController
from repro.throttle.controller import ThrottleController
from repro.throttle.dutycycle import DutyCycleActuator, DvfsActuator, OsIdleActuator
from repro.throttle.dvfs_controller import DvfsEnergyController
from repro.throttle.policy import Band, ThrottleDecision, ThrottlePolicy, classify

__all__ = [
    "Band",
    "DutyCycleActuator",
    "DvfsActuator",
    "DvfsEnergyController",
    "OsIdleActuator",
    "PowerClampController",
    "ThrottleController",
    "ThrottleDecision",
    "ThrottlePolicy",
    "classify",
]
