"""The throttling decision rule (paper Section IV-A).

Two metrics, each classified into three bands:

* **power** — the average power drawn per socket over the last daemon
  window.  "Since only a few applications exceeded 150 W for their
  entire execution, we chose 75 W per socket as our metric for high
  energy usage ... 50 W per socket was chosen as our low power point."
* **memory concurrency** — outstanding memory references in the memory
  subsystem.  "Each processor was found to have an effective maximum
  outstanding memory references count ... The high value is chosen to be
  75% of the maximum achievable number and the low is 25%."

Decision: both High ⇒ enable throttling at the next opportunity; both
Low ⇒ disable; anything else keeps the current state — "The Medium range
does not toggle throttling, but avoids hysteresis effects that occur
when observed values hover near the threshold."

Power alone is deliberately insufficient: "When only average power is
used to determine throttling, it often limits thread count for programs
running at high efficiency and increased overall energy consumption."
The dual-metric rule is what the ablation bench compares against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import MemoryConfig, ThrottleConfig


class Band(enum.Enum):
    """Classification band of an observed metric."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


def classify(value: float, low: float, high: float) -> Band:
    """Classify ``value`` against a (low, high) threshold pair."""
    if low > high:
        raise ValueError(f"low threshold {low!r} exceeds high {high!r}")
    if value >= high:
        return Band.HIGH
    if value <= low:
        return Band.LOW
    return Band.MEDIUM


@dataclass(frozen=True)
class ThrottleDecision:
    """One evaluation of the policy (kept for the controller's log)."""

    time_s: float
    power_band: Band
    memory_band: Band
    throttle: bool
    #: The per-socket observations that produced the bands.
    max_socket_power_w: float = 0.0
    max_socket_concurrency: float = 0.0
    #: Fail-safe bookkeeping: the controller held its previous state
    #: because the meters were stale (no policy evaluation happened) ...
    held_stale: bool = False
    #: ... or released throttling entirely because the meters stayed
    #: unhealthy past the fail-safe deadline.
    failsafe_release: bool = False


class ThrottlePolicy:
    """Stateless band arithmetic + the flag-update rule."""

    def __init__(self, config: ThrottleConfig, memory: MemoryConfig) -> None:
        config.validate()
        memory.validate()
        self.config = config
        #: Maximum achievable outstanding references — the knee of the
        #: socket's concurrency curve (Mandel et al. [10]).
        self.max_concurrency = memory.knee_refs
        self.mem_high = config.mem_high_frac * self.max_concurrency
        self.mem_low = config.mem_low_frac * self.max_concurrency

    def power_band(self, socket_power_w: float) -> Band:
        """Band of one socket's average power."""
        return classify(socket_power_w, self.config.power_low_w, self.config.power_high_w)

    def memory_band(self, concurrency: float) -> Band:
        """Band of one socket's average outstanding-reference count."""
        return classify(concurrency, self.mem_low, self.mem_high)

    def update(
        self,
        current: bool,
        socket_powers_w: list[float],
        socket_concurrency: list[float],
        time_s: float = 0.0,
    ) -> ThrottleDecision:
        """Evaluate the rule against the hottest socket.

        The paper throttles when the node is burning power *and*
        contended; the binding constraint is the most-loaded socket, so
        bands are computed from the per-socket maxima.
        """
        max_power = max(socket_powers_w) if socket_powers_w else 0.0
        max_conc = max(socket_concurrency) if socket_concurrency else 0.0
        p_band = self.power_band(max_power)
        m_band = self.memory_band(max_conc)
        if self.config.power_only:
            # Ablation: the power-only rule the paper rejects.
            if p_band is Band.HIGH:
                throttle = True
            elif p_band is Band.LOW:
                throttle = False
            else:
                throttle = current
        elif p_band is Band.HIGH and m_band is Band.HIGH:
            throttle = True
        elif p_band is Band.LOW and m_band is Band.LOW:
            throttle = False
        else:
            throttle = current
        return ThrottleDecision(
            time_s=time_s,
            power_band=p_band,
            memory_band=m_band,
            throttle=throttle,
            max_socket_power_w=max_power,
            max_socket_concurrency=max_conc,
        )
