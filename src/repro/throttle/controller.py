"""The user-level throttle daemon inside the runtime (Section IV).

"Automatic throttling for Qthreads is implemented using two daemons: the
system RCRdaemon ... and, inside the Qthreads runtime, a user-level
daemon that reads the shared memory region updated by RCRdaemon.  The
latter daemon activates every 0.1 seconds and uses very little CPU time."

Each activation reads the per-socket power and memory-concurrency meters
from the blackboard, applies :class:`~repro.throttle.policy.ThrottlePolicy`,
and — on a state change — engages or releases the scheduler's
shepherd-local active-thread limits.  Workers observe the limits at their
next thread-initiation point and spin at reduced duty; nothing is
preempted.
"""

from __future__ import annotations

from typing import Optional

from repro.config import ThrottleConfig
from repro.errors import MeasurementError
from repro.qthreads.scheduler import Scheduler
from repro.rcr import meters
from repro.rcr.blackboard import Blackboard
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.throttle.policy import ThrottleDecision, ThrottlePolicy


class ThrottleController:
    """Periodic policy evaluation driving the scheduler's throttle gate."""

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        blackboard: Blackboard,
        config: ThrottleConfig,
    ) -> None:
        config.validate()
        self.engine = engine
        self.scheduler = scheduler
        self.blackboard = blackboard
        self.config = config
        self.policy = ThrottlePolicy(config, scheduler.machine.memory)
        self._sockets = scheduler.machine.sockets
        self._running = False
        self._next_event = None
        self._flag = False
        #: Decision history for experiments/tests (bounded).
        self.decisions: list[ThrottleDecision] = []
        self.max_history = 100_000
        #: Fail-safe counters: evaluations held on stale meters, and
        #: full releases forced by meters staying unhealthy past the
        #: deadline.
        self.held_stale_count = 0
        self.failsafe_releases = 0

    @property
    def throttling(self) -> bool:
        """Current state of the throttle flag."""
        return self._flag

    def start(self) -> None:
        """Begin periodic evaluation (first tick one period from now).

        The controller must be started *after* the RCRdaemon so that at
        equal timestamps the daemon's fresh sample is published before the
        controller reads it (the engine orders same-priority events by
        scheduling sequence).
        """
        if self._running:
            raise MeasurementError("throttle controller already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop evaluating; leaves the current throttle state in place."""
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _schedule_next(self) -> None:
        self._next_event = self.engine.schedule(
            self.config.period_s, self._tick, priority=Priority.DAEMON,
            label="throttle-tick",
        )

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate_once()
        self._schedule_next()

    def meter_staleness_s(self) -> float:
        """Effective age of the freshest *good* power data, seconds.

        Two components add up per socket: the blackboard record's own age
        (covers a daemon that stopped publishing — a stall freezes the
        timestamps) plus the staleness the daemon stamped at publish time
        (covers a daemon that keeps ticking but is carrying forward
        last-known-good values in degraded mode).  The most-stale socket
        governs, matching the policy's hottest-socket rule.  Sockets whose
        meters were never published are ignored so the controller keeps
        its legacy behaviour when run without a daemon.
        """
        now = self.engine.now
        worst = 0.0
        for s in range(self._sockets):
            path = meters.socket_power_w(s)
            if not self.blackboard.has(path):
                continue
            age = self.blackboard.staleness_s(path, now)
            stamped = self.blackboard.read_value(meters.socket_stale_s(s), default=0.0)
            worst = max(worst, age + stamped)
        return worst

    def evaluate_once(self) -> ThrottleDecision:
        """Read meters, apply the policy (or the fail-safe), actuate.

        Fail-safe policy: on meters older than ``config.stale_after_s``
        the controller *holds* its current throttle state — stale data
        must not toggle anything.  If the meters stay unhealthy past
        ``config.failsafe_release_s``, throttling is released entirely
        and the node returns to full concurrency: an unthrottled run is
        the paper's safe default (always correct, possibly less
        efficient), whereas staying throttled on dead meters could pin
        the machine at reduced concurrency forever.
        """
        powers = [
            self.blackboard.read_value(meters.socket_power_w(s), default=0.0)
            for s in range(self._sockets)
        ]
        concurrency = [
            self.blackboard.read_value(meters.socket_mem_concurrency(s), default=0.0)
            for s in range(self._sockets)
        ]
        stale_s = self.meter_staleness_s()
        if stale_s > self.config.stale_after_s:
            decision = self._failsafe_decision(
                stale_s, max(powers, default=0.0), max(concurrency, default=0.0)
            )
        else:
            decision = self.policy.update(
                self._flag, powers, concurrency, time_s=self.engine.now
            )
        if len(self.decisions) < self.max_history:
            self.decisions.append(decision)
        if decision.throttle != self._flag:
            self._flag = decision.throttle
            if self._flag:
                self.scheduler.apply_throttle(self.config.throttled_threads)
            else:
                self.scheduler.release_throttle()
        return decision

    def _failsafe_decision(
        self, stale_s: float, max_power: float, max_conc: float
    ) -> ThrottleDecision:
        """Hold on stale meters; release past the fail-safe deadline."""
        release = stale_s > self.config.failsafe_release_s
        if release:
            self.failsafe_releases += 1
        else:
            self.held_stale_count += 1
        return ThrottleDecision(
            time_s=self.engine.now,
            power_band=self.policy.power_band(max_power),
            memory_band=self.policy.memory_band(max_conc),
            throttle=False if release else self._flag,
            max_socket_power_w=max_power,
            max_socket_concurrency=max_conc,
            held_stale=not release,
            failsafe_release=release,
        )

    # ------------------------------------------------------------------
    # experiment support
    # ------------------------------------------------------------------
    @property
    def time_throttled_s(self) -> float:
        """Total simulated time the flag was set (from decision history)."""
        total = 0.0
        prev_time: Optional[float] = None
        prev_flag = False
        for decision in self.decisions:
            if prev_time is not None and prev_flag:
                total += decision.time_s - prev_time
            prev_time = decision.time_s
            prev_flag = decision.throttle
        return total
