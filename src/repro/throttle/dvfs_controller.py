"""A DVFS-based energy controller — the paper's road not taken.

Most prior work (Section V) reduces power by scaling chip frequency.  To
make the paper's argument quantitative, this controller applies the SAME
dual-metric High/Medium/Low policy as MAESTRO but actuates through
chip-global DVFS instead of per-core concurrency throttling:

* both High  ⇒ scale *every* core of *every* socket to ``ratio``;
* both Low   ⇒ restore nominal frequency;
* Medium     ⇒ hold (hysteresis), as in the paper.

The two modelled DVFS drawbacks from Section IV apply: the transition
takes tens of microseconds, and the slowdown hits the threads doing
useful work, not just the excess ones.  The ablation benchmark shows the
consequence: for the same power reduction, DVFS costs more time than
concurrency throttling on contention-limited programs, because slowing
*all* cores does nothing to relieve the memory-system oversubscription
that was the real bottleneck.
"""

from __future__ import annotations

from repro.config import ThrottleConfig
from repro.errors import MeasurementError
from repro.qthreads.scheduler import Scheduler
from repro.rcr import meters
from repro.rcr.blackboard import Blackboard
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.throttle.dutycycle import DvfsActuator
from repro.throttle.policy import ThrottleDecision, ThrottlePolicy


class DvfsEnergyController:
    """MAESTRO's policy with chip-global frequency scaling as actuator."""

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        blackboard: Blackboard,
        config: ThrottleConfig,
        *,
        ratio: float = 0.75,
    ) -> None:
        config.validate()
        if not (0.0 < ratio < 1.0):
            raise MeasurementError(f"DVFS ratio must be in (0,1), got {ratio!r}")
        self.engine = engine
        self.scheduler = scheduler
        self.blackboard = blackboard
        self.config = config
        self.ratio = ratio
        self.policy = ThrottlePolicy(config, scheduler.machine.memory)
        self.actuator = DvfsActuator(scheduler.node)
        self._sockets = scheduler.machine.sockets
        self._flag = False
        self._running = False
        self._next_event = None
        self.decisions: list[ThrottleDecision] = []

    @property
    def scaled_down(self) -> bool:
        """True while the chip runs at the reduced frequency."""
        return self._flag

    def start(self) -> None:
        if self._running:
            raise MeasurementError("DVFS controller already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        if self._flag:
            self._flag = False
            for socket in range(self._sockets):
                self.actuator.restore(socket)

    def _schedule_next(self) -> None:
        self._next_event = self.engine.schedule(
            self.config.period_s, self._tick, priority=Priority.DAEMON,
            label="dvfs-tick",
        )

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate_once()
        self._schedule_next()

    def evaluate_once(self) -> ThrottleDecision:
        powers = [
            self.blackboard.read_value(meters.socket_power_w(s), default=0.0)
            for s in range(self._sockets)
        ]
        concurrency = [
            self.blackboard.read_value(meters.socket_mem_concurrency(s), default=0.0)
            for s in range(self._sockets)
        ]
        decision = self.policy.update(self._flag, powers, concurrency,
                                      time_s=self.engine.now)
        self.decisions.append(decision)
        if decision.throttle != self._flag:
            self._flag = decision.throttle
            for socket in range(self._sockets):
                if self._flag:
                    self.actuator.set_frequency_ratio(socket, self.ratio)
                else:
                    self.actuator.restore(socket)
        return decision
