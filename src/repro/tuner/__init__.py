"""Energy autotuning (extension).

Section II-C.3 concludes that "finding the optimal compiler optimizations
for any given application will require autotuning", and Section II-C.4
shows the energy-optimal thread count sits below the performance-optimal
one for contention-limited programs.  This package is that autotuner: it
sweeps configurations through the full measurement stack and picks the
optimum under an explicit objective (time, energy, or energy-delay
product).
"""

from repro.tuner.autotuner import (
    Objective,
    SweepPoint,
    TuneResult,
    tune_optlevel,
    tune_threads,
)

__all__ = [
    "Objective",
    "SweepPoint",
    "TuneResult",
    "tune_optlevel",
    "tune_threads",
]
