"""Configuration search for minimum time / energy / energy-delay.

The tuner is deliberately brute-force over small, discrete spaces (thread
counts; -O levels): that is what the paper means by autotuning for these
knobs, and every probe is a full measured execution, so the result table
doubles as the data behind the energy/performance trade-off plots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.experiments.runner import run_measurement


class Objective(enum.Enum):
    """What the tuner minimises."""

    TIME = "time"
    ENERGY = "energy"
    #: Energy-delay product — the usual compromise metric.
    EDP = "edp"


@dataclass(frozen=True)
class SweepPoint:
    """One probed configuration."""

    threads: int
    optlevel: str
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s

    def score(self, objective: Objective) -> float:
        if objective is Objective.TIME:
            return self.time_s
        if objective is Objective.ENERGY:
            return self.energy_j
        return self.edp


@dataclass
class TuneResult:
    """Outcome of a tuning sweep."""

    app: str
    compiler: str
    objective: Objective
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def best(self) -> SweepPoint:
        if not self.points:
            raise ConfigError("tuning produced no points")
        return min(self.points, key=lambda p: p.score(self.objective))

    def best_for(self, objective: Objective) -> SweepPoint:
        """Re-rank the same sweep under a different objective."""
        if not self.points:
            raise ConfigError("tuning produced no points")
        return min(self.points, key=lambda p: p.score(objective))

    def format(self) -> str:
        lines = [
            f"autotune {self.app} ({self.compiler}) minimizing {self.objective.value}:",
            f"{'threads':>8} {'level':>6} {'time':>9} {'energy':>10} {'EDP':>12}",
        ]
        best = self.best
        for point in self.points:
            mark = "  <-- best" if point is best else ""
            lines.append(
                f"{point.threads:>8d} {point.optlevel:>6} {point.time_s:>9.2f} "
                f"{point.energy_j:>10.1f} {point.edp:>12.1f}{mark}"
            )
        return "\n".join(lines)


def tune_threads(
    app: str,
    compiler: str = "gcc",
    optlevel: str = "O2",
    *,
    objective: Objective = Objective.ENERGY,
    threads: Sequence[int] = (1, 2, 4, 8, 12, 16),
) -> TuneResult:
    """Sweep thread counts; return the measured table and the optimum.

    For contention-limited programs the energy optimum lands below the
    time optimum — the thread count a static installation of the paper's
    throttling would pick.
    """
    if not threads:
        raise ConfigError("at least one thread count is required")
    result = TuneResult(app=app, compiler=compiler, objective=objective)
    for p in threads:
        measured = run_measurement(app, compiler, optlevel, threads=p)
        result.points.append(
            SweepPoint(
                threads=p,
                optlevel=optlevel,
                time_s=measured.time_s,
                energy_j=measured.energy_j,
            )
        )
    return result


def tune_optlevel(
    app: str,
    compiler: str = "gcc",
    *,
    objective: Objective = Objective.ENERGY,
    levels: Sequence[str] = ("O0", "O1", "O2", "O3"),
    threads: int = 16,
) -> TuneResult:
    """Sweep optimization levels at a fixed thread count.

    Section II-C.3: "there is no simple relationship between increasing
    optimization level and energy use" — the sweep finds the per-app
    winner instead of assuming one.
    """
    if not levels:
        raise ConfigError("at least one optimization level is required")
    result = TuneResult(app=app, compiler=compiler, objective=objective)
    for level in levels:
        measured = run_measurement(app, compiler, level, threads=threads)
        result.points.append(
            SweepPoint(
                threads=threads,
                optlevel=level,
                time_s=measured.time_s,
                energy_j=measured.energy_j,
            )
        )
    return result
