"""Unit helpers and physical constants used throughout the simulator.

The simulator keeps everything in SI base units internally:

* time — seconds (``float``)
* energy — Joules
* power — Watts
* frequency — Hertz
* temperature — degrees Celsius (RAPL-adjacent MSRs report Celsius offsets)

The only non-SI unit in the system is the RAPL energy counter unit.  On
Sandybridge, ``MSR_PKG_ENERGY_STATUS`` counts in units of 15.3 microJoules
(the paper, Section II-A) and is only 32 bits wide, so it wraps every few
minutes at full load.  The constants and conversion helpers for that live
here so measurement code and hardware code cannot drift apart.
"""

from __future__ import annotations

import math

#: Size of one RAPL energy counter tick, in Joules (15.3 microJoules).
RAPL_ENERGY_UNIT_J: float = 15.3e-6

#: RAPL energy counters are 32 bits wide and wrap around.
RAPL_COUNTER_BITS: int = 32
RAPL_COUNTER_MODULUS: int = 1 << RAPL_COUNTER_BITS

#: Nominal clock frequency of the modelled Xeon E5-2680 (TurboBoost disabled).
NOMINAL_FREQUENCY_HZ: float = 2.7e9

#: Finest duty-cycle step on Sandybridge clock modulation (1/32 of nominal).
MIN_DUTY_CYCLE: float = 1.0 / 32.0

#: Convenience aliases for readability in configuration code.
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3


def joules_to_rapl_ticks(joules: float) -> int:
    """Convert Joules to whole RAPL counter ticks (truncating)."""
    if joules < 0:
        raise ValueError(f"energy must be non-negative, got {joules!r}")
    return int(joules / RAPL_ENERGY_UNIT_J)


def rapl_ticks_to_joules(ticks: int) -> float:
    """Convert a RAPL tick count to Joules."""
    return ticks * RAPL_ENERGY_UNIT_J


def wrap_rapl_counter(ticks: int) -> int:
    """Reduce a monotonically-increasing tick count to the 32-bit register value."""
    return ticks % RAPL_COUNTER_MODULUS


def rapl_delta(before: int, after: int) -> int:
    """Tick delta between two raw 32-bit register reads, assuming ≤ 1 wrap.

    This is the arithmetic every RAPL client must implement: the register is
    read often enough that at most one wrap occurs between reads, and the
    delta is computed modulo 2**32.
    """
    return (after - before) % RAPL_COUNTER_MODULUS


def rapl_delta_and_wrap(before: int, after: int) -> tuple[int, bool]:
    """Tick delta *and* wrap flag between two raw reads, one code path.

    The delta is modular (``rapl_delta``) and the wrap flag is the single
    authoritative statement of "the register value went backwards", so
    clients cannot disagree with their own delta arithmetic by re-deriving
    it.  The exact-wrap edge case — ``after == before`` because exactly one
    full counter period elapsed — yields ``(0, False)``: at the register
    level a full-period wrap is indistinguishable from no progress at all,
    which is precisely why clients must poll well inside one period (or
    carry a rate estimate; see ``EnergyReader.poll_sample``).
    """
    return (after - before) % RAPL_COUNTER_MODULUS, after < before


def watts(energy_j: float, seconds: float) -> float:
    """Average power of ``energy_j`` Joules spent over ``seconds`` seconds."""
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {seconds!r}")
    return energy_j / seconds


def cycles_to_seconds(cycles: float, frequency_hz: float = NOMINAL_FREQUENCY_HZ) -> float:
    """Wall time for ``cycles`` clock cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float = NOMINAL_FREQUENCY_HZ) -> float:
    """Clock cycles elapsed in ``seconds`` at ``frequency_hz``."""
    return seconds * frequency_hz


def approx_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Tolerant float comparison used by simulator invariant checks."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
