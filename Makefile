# Convenience targets for the reproduction repository.

PYTHON ?= python

COV_FAIL_UNDER ?= 80

.PHONY: install test test-cosched test-faults test-golden test-harness test-metering test-obs test-validate test-sched test-service test-store validate-smoke sched-smoke serve-smoke metersweep-smoke store-smoke cosched-smoke obs-smoke coverage sweep-smoke smoke-faults bench bench-engine bench-sweep bench-sched bench-service bench-store bench-cosched bench-obs reproduce recalibrate examples clean

install:
	pip install -e . --no-build-isolation

test: sweep-smoke sched-smoke serve-smoke metersweep-smoke store-smoke cosched-smoke obs-smoke
	$(PYTHON) -m pytest tests/

# Co-scheduling suite: contention injectors, co-run profiling sweep,
# the interference predictor and the profile-driven placement policy.
test-cosched:
	$(PYTHON) -m pytest tests/ -m cosched

# Robustness suite: fault injection + degraded-mode behaviour only.
test-faults:
	$(PYTHON) -m pytest tests/ -m faults

# Golden-trace bit-identity suite: canonical runs vs pinned digests
# (tests/sim/golden_digests.json).  To intentionally re-pin after a
# behavior change: python -m repro.perf.golden --update
test-golden:
	$(PYTHON) -m pytest tests/ -m golden

# Harness suite: run specs, executor, result cache, telemetry.
test-harness:
	$(PYTHON) -m pytest tests/ -m harness

# Metering suite: meter backends, counter-model estimator properties,
# observer-overhead accounting tripwires and the metersweep experiment.
test-metering:
	$(PYTHON) -m pytest tests/ -m metering

# Observability suite: metrics registry, Prometheus exposition
# conformance, trace spans, service metrics frame, physics inertness.
test-obs:
	$(PYTHON) -m pytest tests/ -m obs

# Validation suite: invariant-checker tripwires, ledger audits,
# expected-violation taxonomy, differential replay.
test-validate:
	$(PYTHON) -m pytest tests/ -m validate

# Scheduler suite: workload traces, admission control, placement
# policies, cluster determinism, cluster-budget SLOs.
test-sched:
	$(PYTHON) -m pytest tests/ -m sched

# Experiment-service suite: wire protocol, admission queue and quotas,
# journal recovery, worker crash/timeout handling, end-to-end TCP tests
# and the SIGKILL crash-recovery acceptance test.
test-service:
	$(PYTHON) -m pytest tests/ -m service

# Sharded-store suite: content-addressed layout, sqlite ledger index,
# legacy-cache compat and migration, multi-process contention.
test-store:
	$(PYTHON) -m pytest tests/ -m store

# End-to-end sanitizer smoke: the quick validation corpus plus the
# differential replay, via the CLI exactly as a user would run it.
validate-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.cli validate --quick --differential --quiet

# End-to-end scheduler smoke: a trimmed policy x profile x budget grid
# through the harness, via the CLI exactly as a user would run it.
sched-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.cli schedsweep --quick --quiet

# End-to-end metering smoke: the quick metersweep grid (both backends,
# two cadences, fault-free) through the harness with the post-sweep
# invariant audit, via the CLI exactly as a user would run it.
metersweep-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.cli metersweep --quick --quiet

# End-to-end service smoke: boot a real service on an ephemeral port,
# submit duplicate jobs, SIGKILL the in-flight worker and prove the
# redelivered job still completes with exactly one execution per digest.
serve-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.service.smoke

# End-to-end co-scheduling smoke: a trimmed app x injector x level
# grid through the harness (solo baselines + co-run cells), reduced to
# sensitivity profiles, via the CLI exactly as a user would run it.
cosched-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.cli coschedsweep --quick --quiet

# End-to-end observability smoke: a real service answering the metrics
# frame (queue depth, frame p99, cache hit), the rendered obs report, a
# traced sched campaign exporting loadable Chrome-trace JSON, and the
# snapshot-invariant audit.
obs-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.obs.smoke

# End-to-end store smoke: a read-only pass of the store benchmark,
# which pins exactly-once counts, warm-query offset coverage and
# count-preserving compaction against a throwaway cache root.
store-smoke:
	$(PYTHON) benchmarks/bench_store.py

# Line-coverage over the full suite with a ratcheted floor.  Requires
# pytest-cov (pip install -e .[cov]); fails fast with a hint otherwise.
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov not installed; run: pip install -e .[cov]"; exit 1; }
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing \
		--cov-fail-under=$(COV_FAIL_UNDER)

# End-to-end harness smoke: a tiny 4-spec parallel sweep into a throwaway
# cache, run twice — the first pass must execute everything, the second
# must be served entirely from the cache with bit-identical records.
sweep-smoke:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) -m repro.harness.smoke

# End-to-end degraded-mode smoke: the fault-sweep experiment with a fixed
# seed (one app, three profiles), exercising retry, interpolation, the
# daemon watchdog and the controller fail-safe on every run.
smoke-faults:
	$(PYTHON) -m repro.cli faultsweep --quick --seed 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine hot-path benchmarks vs the committed baseline (read-only; the
# runner refuses to rewrite BENCH_engine.json without --update).
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py

# Serial-vs-parallel sweep benchmark vs the committed baseline
# (read-only; refuses to rewrite BENCH_sweep.json without --update).
bench-sweep:
	$(PYTHON) benchmarks/bench_sweep.py

# Cluster-scheduler throughput benchmark vs the committed baseline
# (read-only; refuses to rewrite BENCH_sched.json without --update).
bench-sched:
	$(PYTHON) benchmarks/bench_sched.py

# Service chaos benchmark: submit->result latency and throughput with a
# worker-kill fault schedule running, vs the committed baseline
# (read-only; refuses to rewrite BENCH_service.json without --update).
bench-service:
	$(PYTHON) benchmarks/bench_service.py

# Sharded-store benchmark: put/get throughput and warm indexed-query
# latency vs the committed baseline (BENCH_store.json).
bench-store:
	$(PYTHON) benchmarks/bench_store.py

# Co-scheduling benchmark: profiling-sweep throughput plus predictor
# fit/predict latency vs the committed baseline (read-only; refuses to
# rewrite BENCH_cosched.json without --update).
bench-cosched:
	$(PYTHON) benchmarks/bench_cosched.py

# Observability overhead benchmark: record latencies plus the
# instrumented-vs-bare sweep gap, which must stay under the 5% cap
# (read-only; refuses to rewrite BENCH_obs.json without --update).
bench-obs:
	$(PYTHON) benchmarks/bench_obs.py

# Regenerate EXPERIMENTS.md (runs the full evaluation, ~5-10 minutes).
reproduce:
	$(PYTHON) -m repro.experiments.compare EXPERIMENTS.md

# Refresh the empirical residual corrections after model changes.
recalibrate:
	$(PYTHON) -m repro.experiments.recalibrate

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
