# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench reproduce recalibrate examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate EXPERIMENTS.md (runs the full evaluation, ~5-10 minutes).
reproduce:
	$(PYTHON) -m repro.experiments.compare EXPERIMENTS.md

# Refresh the empirical residual corrections after model changes.
recalibrate:
	$(PYTHON) -m repro.experiments.recalibrate

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
