# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-faults test-golden smoke-faults bench bench-engine reproduce recalibrate examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Robustness suite: fault injection + degraded-mode behaviour only.
test-faults:
	$(PYTHON) -m pytest tests/ -m faults

# Golden-trace bit-identity suite: canonical runs vs pinned digests
# (tests/sim/golden_digests.json).  To intentionally re-pin after a
# behavior change: python -m repro.perf.golden --update
test-golden:
	$(PYTHON) -m pytest tests/ -m golden

# End-to-end degraded-mode smoke: the fault-sweep experiment with a fixed
# seed (one app, three profiles), exercising retry, interpolation, the
# daemon watchdog and the controller fail-safe on every run.
smoke-faults:
	$(PYTHON) -m repro.cli faultsweep --quick --seed 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine hot-path benchmarks vs the committed baseline (read-only; the
# runner refuses to rewrite BENCH_engine.json without --update).
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py

# Regenerate EXPERIMENTS.md (runs the full evaluation, ~5-10 minutes).
reproduce:
	$(PYTHON) -m repro.experiments.compare EXPERIMENTS.md

# Refresh the empirical residual corrections after model changes.
recalibrate:
	$(PYTHON) -m repro.experiments.recalibrate

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
