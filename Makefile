# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-faults smoke-faults bench reproduce recalibrate examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Robustness suite: fault injection + degraded-mode behaviour only.
test-faults:
	$(PYTHON) -m pytest tests/ -m faults

# End-to-end degraded-mode smoke: the fault-sweep experiment with a fixed
# seed (one app, three profiles), exercising retry, interpolation, the
# daemon watchdog and the controller fail-safe on every run.
smoke-faults:
	$(PYTHON) -m repro.cli faultsweep --quick --seed 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate EXPERIMENTS.md (runs the full evaluation, ~5-10 minutes).
reproduce:
	$(PYTHON) -m repro.experiments.compare EXPERIMENTS.md

# Refresh the empirical residual corrections after model changes.
recalibrate:
	$(PYTHON) -m repro.experiments.recalibrate

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
