"""Setup shim.

The canonical project metadata lives in pyproject.toml.  This file exists
because the build environment is offline and has no `wheel` package, so
PEP 660 editable installs (which must build a wheel) cannot work; pip falls
back to the legacy `setup.py develop` path, which only needs egg-info.
"""
from setuptools import setup

setup()
