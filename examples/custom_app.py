#!/usr/bin/env python
"""Write your own task-parallel program against the public API.

Shows the full surface a new application uses: OpenMP-style constructs
(`parallel_reduce`), explicit qthread operations (`Spawn`/`Taskwait`),
work segments with memory character, and the measurement stack — here a
task-parallel Monte-Carlo pi estimator whose leaf tasks really compute.

The interesting knob: flip ``MEM_FRACTION``/``COHERENCE`` below and watch
the measured scaling and energy change — with a shared-accumulator
coherence cost the parallel version stops paying for itself, exactly the
micro-benchmark pathology from the paper's Section II.

Run:  python examples/custom_app.py
"""

import operator

import numpy as np

from repro.config import RuntimeConfig, ThrottleConfig
from repro.openmp import OmpEnv, parallel_reduce
from repro.qthreads import Runtime, Work
from repro.rcr import Blackboard, RCRDaemon, RegionClient
from repro.throttle import ThrottleController

#: Workload character of each chunk (try mem 0.9 / coherence 2.0 to see
#: the coherence-storm pathology).
MEM_FRACTION = 0.3
COHERENCE = 0.0
CHUNKS = 400
SAMPLES_PER_CHUNK = 2_000
WORK_PER_CHUNK_S = 0.004


def monte_carlo_pi(env: OmpEnv, seed: int = 0):
    """Task-parallel pi estimation: one task per sample chunk."""

    def chunk_body(lo: int, hi: int):
        # The simulated cost of this chunk on the machine model...
        yield Work(
            WORK_PER_CHUNK_S * (hi - lo),
            mem_fraction=MEM_FRACTION,
            coherence_penalty=COHERENCE,
            tag="mc-chunk",
        )
        # ...and the real computation it stands for.
        hits = 0
        for index in range(lo, hi):
            rng = np.random.default_rng(seed + index)
            xy = rng.random((SAMPLES_PER_CHUNK, 2))
            hits += int(np.count_nonzero((xy ** 2).sum(axis=1) <= 1.0))
        return hits

    def program():
        hits = yield from parallel_reduce(
            env, 0, CHUNKS, chunk_body, operator.add, 0, chunk=1, label="mc-pi"
        )
        return 4.0 * hits / (CHUNKS * SAMPLES_PER_CHUNK)

    return program()


def run(threads: int, throttle: bool = False):
    runtime = Runtime(runtime_config=RuntimeConfig(num_threads=threads))
    blackboard = Blackboard()
    daemon = RCRDaemon(runtime.engine, runtime.node, blackboard)
    daemon.start()
    client = RegionClient(runtime.engine, blackboard, 2, daemon=daemon)
    if throttle:
        controller = ThrottleController(
            runtime.engine, runtime.scheduler, blackboard, ThrottleConfig(enabled=True)
        )
        controller.start()
    client.start("mc-pi")
    result = runtime.run(monte_carlo_pi(OmpEnv(num_threads=threads)))
    report = client.end("mc-pi")
    return result, report


def main() -> None:
    print(f"Monte-Carlo pi: {CHUNKS} tasks x {SAMPLES_PER_CHUNK} samples, "
          f"mem_fraction={MEM_FRACTION}, coherence={COHERENCE}\n")
    baseline = None
    for threads in (1, 4, 16):
        result, report = run(threads)
        speedup = baseline / report.elapsed_s if baseline else 1.0
        baseline = baseline or report.elapsed_s
        print(
            f"{threads:2d} threads: pi ~= {result.result:.5f}   "
            f"{report.elapsed_s:6.3f} s  {report.energy_j:7.1f} J  "
            f"{report.avg_watts:6.1f} W   speedup {speedup:5.2f}"
        )
    print(
        "\n(The estimate is identical at every thread count — the task "
        "graph computes the same sums regardless of schedule.)"
    )


if __name__ == "__main__":
    main()
