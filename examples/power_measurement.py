#!/usr/bin/env python
"""Low-level tour of the measurement stack: MSRs, RAPL wraps, the daemon.

Everything the paper's Section II infrastructure does, driven by hand:

1. read the RAPL energy counter through the MSR interface (supervisor
   permission required — unprivileged access raises, as on real hardware);
2. accumulate it wrap-aware while a hot workload runs long enough to
   wrap the 32-bit register;
3. watch the RCRdaemon publish power/temperature/memory-concurrency
   meters on its shared-memory blackboard.

Run:  python examples/power_measurement.py
"""

from repro.apps import build_app
from repro.config import RuntimeConfig
from repro.errors import MSRPermissionError
from repro.hw.msr import MSR_PKG_ENERGY_STATUS
from repro.measure.energy import EnergyReader
from repro.openmp import OmpEnv
from repro.qthreads import Runtime
from repro.rcr import Blackboard, RCRDaemon
from repro.units import RAPL_COUNTER_MODULUS, RAPL_ENERGY_UNIT_J


def main() -> None:
    runtime = Runtime(runtime_config=RuntimeConfig(num_threads=16))
    node = runtime.node

    # -- 1. raw MSR access ------------------------------------------------
    print("Reading MSR_PKG_ENERGY_STATUS without privilege...")
    try:
        node.msr.read_package(0, MSR_PKG_ENERGY_STATUS)
    except MSRPermissionError as exc:
        print(f"  refused (as on real hardware): {exc}\n")

    raw = node.msr.read_package(0, MSR_PKG_ENERGY_STATUS, privileged=True)
    print(f"As root: raw counter = {raw} ticks x {RAPL_ENERGY_UNIT_J * 1e6:.1f} uJ")
    wrap_joules = RAPL_COUNTER_MODULUS * RAPL_ENERGY_UNIT_J
    print(f"The 32-bit register wraps every {wrap_joules / 1000:.1f} kJ "
          f"(~{wrap_joules / 150 / 60:.1f} minutes at 150 W).\n")

    # -- 2. wrap-aware accumulation over a long run ------------------------
    reader = EnergyReader(node.msr, 0)
    blackboard = Blackboard()
    daemon = RCRDaemon(runtime.engine, node, blackboard)
    daemon.start()

    print("Running mergesort scaled 120x (~45 minutes simulated) so the")
    print("counter wraps; the daemon polls every 0.1 s and tracks wraps...")
    env = OmpEnv(num_threads=16)
    result = runtime.run(build_app("mergesort", env, scale=120.0))
    truth_kj = result.energy_j_sockets[0] / 1000

    # A client that polled only once at the end misses the wraps and
    # undercounts — exactly the failure mode the paper's tools guard
    # against ("The measurement tools monitor the number of wraps").
    lazy_total = reader.poll()
    from repro.rcr import meters
    daemon_total = blackboard.read_value(meters.socket_energy_j(0))
    wraps = blackboard.read_value(meters.socket_wraps(0))
    print(f"  ground truth:              {truth_kj:8.2f} kJ on socket 0")
    print(
        f"  single end-of-run poll:    {lazy_total / 1000:8.2f} kJ  "
        f"<-- WRONG: missed the wrap(s), delta taken mod 2^32"
    )
    print(
        f"  daemon (0.1 s cadence):    {daemon_total / 1000:8.2f} kJ  "
        f"across {wraps:.0f} tracked wrap(s)  <-- correct"
    )

    # -- 3. the blackboard ------------------------------------------------
    print("\nRCR blackboard after the run (self-describing hierarchy):")
    for path in blackboard.paths("node.socket.0"):
        record = blackboard.read(path)
        print(f"  {path:36s} = {record.value:12.2f}   (v{record.version})")


if __name__ == "__main__":
    main()
