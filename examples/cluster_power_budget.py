#!/usr/bin/env python
"""Multi-node power scheduling (the paper's conclusion, made concrete).

Three simulated nodes run different workloads under one global power
budget.  Each node enforces its local share with a power clamp built on
``MSR_PKG_POWER_LIMIT`` plus concurrency throttling; a cluster-level
coordinator re-divides the budget every second based on measured demand,
shifting Watts from finished or idle nodes to the ones still working —
"power scheduling" in the sense of Rountree et al., driven through the
per-node parallelism/energy interface the paper's runtime exposes.

Run:  python examples/cluster_power_budget.py [budget_watts]
"""

import sys

from repro.cluster import run_cluster


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 380.0
    workloads = [
        ("bots-health", "maestro"),
        ("bots-strassen", "maestro"),
        ("lulesh", "maestro"),
    ]
    print(
        f"Running {len(workloads)} nodes under a {budget:.0f} W global "
        f"budget (unconstrained, they would peak near "
        f"{len(workloads) * 156:.0f} W)...\n"
    )
    result = run_cluster(workloads, global_budget_w=budget, time_limit_s=300.0)
    print(result.format())

    print("\nBudget reallocation trace (every ~5 s):")
    for sample in result.samples[::5]:
        powers = "  ".join(
            f"{name}:{watts:6.1f}W" for name, watts in sample.node_power_w.items()
        )
        budgets = "  ".join(
            f"{watts:6.1f}W" for watts in sample.budgets_w.values()
        )
        print(f"  t={sample.time_s:6.1f}s  measured [{powers}]  budgets [{budgets}]")

    print(
        "\nWatch the trace: when the short health run finishes, the "
        "coordinator hands its Watts to strassen and lulesh, which speed "
        "back up — no node ever exceeds its clamp for long, and the "
        "cluster peak stays at the budget."
    )


if __name__ == "__main__":
    main()
