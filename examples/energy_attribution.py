#!/usr/bin/env python
"""Where do the Joules go?  Per-phase energy attribution.

Runs LULESH with tag-level energy tracking: every busy core's power is
attributed to the tag of the segment it is executing, so the breakdown
follows the *work* (force / motion / EOS phases, dt reductions, runtime
overhead) rather than wall-clock windows.  The unattributed remainder is
the machine's static draw — uncore, idle cores, leakage — which is
exactly the fraction no scheduler decision can recover.

Run:  python examples/energy_attribution.py [app]
"""

import sys

from repro.apps import build_app
from repro.config import MachineConfig, RuntimeConfig
from repro.measure.attribution import format_tag_energy, tag_energy_report
from repro.openmp import OmpEnv
from repro.qthreads import Runtime


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "lulesh"
    runtime = Runtime(
        MachineConfig(),
        RuntimeConfig(num_threads=16),
        track_tag_energy=True,
    )
    env = OmpEnv(num_threads=16)
    print(f"Running {app} (GCC -O2, 16 threads) with tag-energy tracking...\n")
    result = runtime.run(build_app(app, env, compiler="gcc", optlevel="O2"))

    print(format_tag_energy(runtime.node))

    rows = tag_energy_report(runtime.node)
    attributed = sum(r.joules for r in rows)
    static = result.energy_j - attributed
    print(
        f"\nrun total {result.energy_j:.1f} J = {attributed:.1f} J doing "
        f"work + {static:.1f} J of static draw (uncore, idle cores, "
        f"leakage) — the floor that only finishing sooner can shrink, the "
        f"paper's 'hurry up and finish' rule of thumb."
    )


if __name__ == "__main__":
    main()
