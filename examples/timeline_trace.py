#!/usr/bin/env python
"""Trace a throttled run: power and core activity over time.

Attaches a timeline probe to a dynamic-throttling run of strassen and
renders the power strip chart — you can see the high-power addition
sweeps, the throttle biting into them (spinning cores appear, power
drops), and the compute-bound multiply phase running untouched at full
width in between.

Run:  python examples/timeline_trace.py [app]
"""

import sys

from repro.analysis.timeline import TimelineProbe
from repro.apps import build_app
from repro.calibration.profiles import get_profile
from repro.config import RuntimeConfig, ThrottleConfig
from repro.openmp import OmpEnv
from repro.qthreads import Runtime
from repro.rcr import Blackboard, RCRDaemon
from repro.throttle import ThrottleController


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "bots-strassen"
    profile = get_profile(app, "maestro", "O3")

    runtime = Runtime(runtime_config=RuntimeConfig(num_threads=16))
    blackboard = Blackboard()
    daemon = RCRDaemon(runtime.engine, runtime.node, blackboard)
    daemon.start()
    controller = ThrottleController(
        runtime.engine, runtime.scheduler, blackboard, ThrottleConfig(enabled=True)
    )
    controller.start()
    probe = TimelineProbe(runtime.engine, runtime.node, period_s=0.1)
    probe.start()

    print(f"Running {app} (MAESTRO, -O3) with dynamic throttling...\n")
    result = runtime.run(build_app(app, OmpEnv(num_threads=16), profile=profile))
    probe.stop()
    controller.stop()

    timeline = probe.timeline
    print("Node power over the run:")
    print(timeline.ascii_strip("node_power_w"))
    print("\nBusy cores:")
    print(timeline.ascii_strip("busy_cores", height=6))
    print("\nSpinning (throttled) cores:")
    print(timeline.ascii_strip("spinning_cores", height=6))
    print(
        f"\nTotals: {result.elapsed_s:.2f} s, {result.energy_j:.0f} J, "
        f"{result.avg_power_w:.1f} W average / {timeline.peak_power_w:.1f} W peak; "
        f"throttle engaged {result.throttle_activations}x.\n"
    )
    print("First lines of the CSV export (timeline.to_csv()):")
    for line in timeline.to_csv().splitlines()[:4]:
        print(" ", line)


if __name__ == "__main__":
    main()
