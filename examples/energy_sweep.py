#!/usr/bin/env python
"""Thread-count sweep: speedup and energy curves (Figures 1-4).

Reproduces the paper's central observation for any benchmark: for
programs with sub-linear speedup, minimal energy occurs at a *lower*
thread count than peak performance — the headroom the MAESTRO throttler
exploits.

Run:  python examples/energy_sweep.py [app] [compiler]
      python examples/energy_sweep.py dijkstra gcc
"""

import sys

from repro.analysis.curves import ascii_chart
from repro.experiments.figures import run_scaling_series


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "lulesh"
    compiler = sys.argv[2] if len(sys.argv) > 2 else "gcc"
    threads = (1, 2, 4, 8, 12, 16)

    print(f"Sweeping {app} ({compiler.upper()} -O2) over {threads} threads...\n")
    series = run_scaling_series(app, compiler, threads=threads)
    print(series.format())

    print("\nSpeedup:")
    print(ascii_chart([series], value="speedup", width=48, height=10))
    print("\nNormalized energy (E/E1):")
    print(ascii_chart([series], value="energy", width=48, height=10))

    best_time = max(series.thread_counts, key=series.speedup)
    best_energy = series.min_energy_threads
    print(
        f"\nPeak performance at {best_time} threads; minimum energy at "
        f"{best_energy} threads."
    )
    if best_energy < best_time:
        rise = series.energy_rise_at_max_threads
        print(
            f"Energy-optimal concurrency is BELOW peak-performance "
            f"concurrency: running flat-out at {threads[-1]} threads wastes "
            f"{rise:.0%} energy over the minimum — this is the headroom "
            f"dynamic concurrency throttling recovers."
        )
    else:
        print(
            "This application scales well: maximum parallelism is also "
            "energy-optimal, and the throttle correctly leaves it alone."
        )


if __name__ == "__main__":
    main()
