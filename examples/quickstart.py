#!/usr/bin/env python
"""Quickstart: measure one benchmark's power and energy.

Builds the full paper stack — simulated two-socket Sandybridge node,
Qthreads runtime, RCRdaemon sampling the RAPL counters every 0.1 s, and
the region-measurement API — runs the LULESH mini-app with its real
hydrodynamics payload, and prints the same quantities the paper's tables
report: execution time, total Joules, average Watts, chip temperatures.

Run:  python examples/quickstart.py
"""

from repro.experiments import run_measurement


def main() -> None:
    print("Running LULESH (GCC -O2, 16 threads) with the real Sedov payload...\n")
    result = run_measurement(
        "lulesh", compiler="gcc", optlevel="O2", threads=16, payload=True
    )

    # The paper-style measurement (RCR region over RAPL counters):
    print(result.region)

    # Runtime statistics from the Qthreads scheduler:
    run = result.run
    print(
        f"\ntasks completed: {run.tasks_completed}, steals: {run.steals}, "
        f"final die temps: "
        + ", ".join(f"{t:.1f} C" for t in run.final_temps_degc)
    )

    # The physics actually computed by the task graph:
    final_time, shock_radius, total_energy = run.result
    print(
        f"\nSedov blast wave after {final_time:.4f} time units: "
        f"shock front at r = {shock_radius:.3f}, "
        f"total fluid energy {total_energy:.3f} (conserved from 1.0)"
    )

    print(
        f"\nPaper's Table I row for comparison: 48.6 s, 7064 J, 145.4 W "
        f"(we measured {result.time_s:.1f} s, {result.energy_j:.0f} J, "
        f"{result.watts:.1f} W)"
    )


if __name__ == "__main__":
    main()
