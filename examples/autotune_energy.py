#!/usr/bin/env python
"""Autotuning for energy: pick the concurrency the throttler would pick.

Sweeps thread counts for a few benchmarks and reports the time-optimal
vs energy-optimal configuration under three objectives.  For the
contention-limited programs the optima disagree — the gap is exactly the
energy the paper's dynamic throttling recovers at runtime, without the
offline search this script performs.

Run:  python examples/autotune_energy.py
"""

from repro.tuner import Objective, tune_threads


def main() -> None:
    for app in ("nqueens", "dijkstra", "lulesh"):
        result = tune_threads(app, "gcc", threads=(1, 2, 4, 8, 12, 16))
        print(result.format())
        time_best = result.best_for(Objective.TIME)
        energy_best = result.best_for(Objective.ENERGY)
        edp_best = result.best_for(Objective.EDP)
        print(
            f"  optima — time: {time_best.threads} threads, "
            f"energy: {energy_best.threads} threads, "
            f"EDP: {edp_best.threads} threads"
        )
        if energy_best.threads < time_best.threads:
            at_time_opt = next(
                p for p in result.points if p.threads == time_best.threads
            )
            waste = at_time_opt.energy_j / energy_best.energy_j - 1.0
            print(
                f"  running at the performance optimum wastes {waste:.0%} "
                f"energy vs the energy optimum — throttling headroom.\n"
            )
        else:
            print("  this app scales well: one optimum fits all objectives.\n")


if __name__ == "__main__":
    main()
