#!/usr/bin/env python
"""MAESTRO dynamic concurrency throttling in action (Tables IV-VII).

Runs one of the paper's four throttling targets three ways — dynamic
(RCRdaemon + throttle controller), fixed 16 threads, fixed 12 threads —
prints the Table IV-style comparison, and then dumps the controller's
decision trace so you can watch the policy classify each 0.1 s window
into High/Medium/Low bands and arm/disarm the throttle.

Run:  python examples/throttling_demo.py [lulesh|dijkstra|bots-health|bots-strassen]
"""

import sys

from repro.calibration.paper_data import THROTTLE_TABLES
from repro.experiments.throttling import run_throttle_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "bots-strassen"
    if app not in THROTTLE_TABLES:
        raise SystemExit(f"pick one of: {', '.join(sorted(THROTTLE_TABLES))}")

    print(f"Running {app} under MAESTRO (-O3): dynamic / fixed-16 / fixed-12...\n")
    result = run_throttle_table(app)
    print(result.format())

    paper = THROTTLE_TABLES[app]
    print("\nPaper's rows for comparison:")
    for config, row in paper.items():
        print(f"  {config:10s} {row.time_s:7.2f} s  {row.joules:8.1f} J  {row.watts:6.1f} W")

    dynamic = result.dynamic16
    print(
        f"\nThrottle engaged {dynamic.run.throttle_activations}x, "
        f"released {dynamic.run.throttle_deactivations}x; "
        f"throttled for {dynamic.time_throttled_s:.2f} s of "
        f"{dynamic.time_s:.2f} s."
    )

    print("\nDecision trace (one line per 0.1 s controller tick):")
    previous = None
    for decision in dynamic.decisions:
        flag = "ON " if decision.throttle else "off"
        marker = "  <-- toggled" if previous is not None and decision.throttle != previous else ""
        print(
            f"  t={decision.time_s:6.2f}s  power {decision.max_socket_power_w:6.1f} W/socket "
            f"[{decision.power_band.value:6s}]  mem {decision.max_socket_concurrency:5.1f} refs "
            f"[{decision.memory_band.value:6s}]  throttle {flag}{marker}"
        )
        previous = decision.throttle


if __name__ == "__main__":
    main()
