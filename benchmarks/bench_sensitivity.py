"""Benchmark: policy-threshold sensitivity study (ablation of the
paper's empirically chosen 75 W / 50 W thresholds)."""

from repro.experiments.sensitivity import run_sensitivity


def test_bench_sensitivity_lulesh(bench_once):
    result = bench_once(
        run_sensitivity, "lulesh",
        power_high_values=(65.0, 75.0, 85.0, 95.0),
    )
    print()
    print(result.format())
    by_threshold = {p.power_high_w: p for p in result.points}
    # The paper's 75 W threshold engages and saves energy...
    assert by_threshold[75.0].activations >= 1
    assert result.energy_savings(by_threshold[75.0]) > 0.01
    # ...a threshold above the app's peak power never does.
    assert by_threshold[95.0].activations == 0


def test_bench_sensitivity_dijkstra(bench_once):
    result = bench_once(
        run_sensitivity, "dijkstra",
        power_high_values=(60.0, 75.0, 90.0),
    )
    print()
    print(result.format())
    engaged = [p for p in result.points if p.activations > 0]
    assert engaged, "no threshold engaged for dijkstra"
    # Throttling dijkstra saves energy wherever it engages (alpha > 1).
    assert all(result.energy_savings(p) > 0.0 for p in engaged)
