"""Benchmark: the simulation engine's hot path (``make bench-engine``).

Times the canonical :mod:`repro.perf.scenarios` — two engine
microbenchmarks (periodic-timer drain, cancel/reschedule churn) and two
end-to-end Table I cells — and compares them against the committed
baseline in ``BENCH_engine.json``.

Usage::

    python benchmarks/bench_engine.py              # run + compare, no writes
    python benchmarks/bench_engine.py --update     # write current results
    python benchmarks/bench_engine.py --update --record-baseline
                                                   # re-stamp the baseline too

``BENCH_engine.json`` is the repo's perf trajectory: ``baseline`` holds
the numbers recorded from the pre-optimization seed code and is only
re-stamped deliberately; ``current`` tracks the tip.  The runner refuses
to write anything unless ``--update`` is passed, so a stray run cannot
silently move the goalposts.

The file is also collected by ``make bench`` (pytest-benchmark); the
pytest entry points time the two microbenchmarks only, since the
end-to-end cells are already covered by ``bench_table1.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_engine.json"


# ----------------------------------------------------------------------
# pytest-benchmark entry points (make bench)
# ----------------------------------------------------------------------
def test_bench_engine_event_drain(bench_once):
    from repro.perf.scenarios import BENCH_SCENARIOS

    meta = bench_once(BENCH_SCENARIOS["event-drain"])
    assert meta["events"] > 0 and meta["pending"] == 0


def test_bench_engine_cancel_churn(bench_once):
    from repro.perf.scenarios import BENCH_SCENARIOS

    meta = bench_once(BENCH_SCENARIOS["cancel-churn"])
    assert meta["events"] > 0 and meta["pending"] == 0


# ----------------------------------------------------------------------
# standalone runner
# ----------------------------------------------------------------------
def _load(path: Path) -> dict:
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def _format_row(name: str, current: dict, baseline: dict | None) -> str:
    wall = current["wall_s"]
    line = f"{name:<18}{wall * 1e3:>10.1f} ms"
    rate = current.get("events_per_s")
    if rate:
        line += f"{rate / 1e3:>12.1f}k ev/s"
    else:
        line += " " * 18
    if baseline:
        speedup = baseline["wall_s"] / wall if wall > 0 else float("inf")
        line += f"   baseline {baseline['wall_s'] * 1e3:>8.1f} ms   speedup {speedup:>5.2f}x"
    return line


def run(argv: list[str] | None = None) -> int:
    from repro.perf.scenarios import run_bench_scenarios

    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine.py",
        description="engine hot-path benchmarks vs the committed baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_engine.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats per scenario (default 3)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_engine.json)")

    timings = run_bench_scenarios(args.scenario, repeats=args.repeats)
    current = {name: t.as_record() for name, t in timings.items()}

    stored = _load(args.json)
    baseline = stored.get("baseline", {}).get("scenarios", {})

    print(f"engine benchmarks (best of {args.repeats}):")
    for name, record in current.items():
        print("  " + _format_row(name, record, baseline.get(name)))

    from repro.perf.benchreport import (
        missing_from_baseline,
        overhead_report,
        speedup_table,
    )
    from repro.perf.scenarios import OVERHEAD_PAIRS

    speedups = speedup_table(current, baseline)
    if speedups:
        worst = min(speedups, key=speedups.get)
        print(f"  worst speedup vs baseline: {speedups[worst]:.2f}x ({worst})")
    new_scenarios = missing_from_baseline(current, baseline)
    if new_scenarios:
        print(f"  new scenario(s) with no baseline yet: "
              f"{', '.join(sorted(new_scenarios))}")

    for line in overhead_report(current, baseline, OVERHEAD_PAIRS):
        print("  " + line)

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = {"scenarios": dict(current)}
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = {"scenarios": current}
    stored["speedup_vs_baseline"] = {
        name: round(value, 3) for name, value in sorted(speedups.items())
    }
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
