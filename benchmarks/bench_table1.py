"""Benchmark: regenerate Table I (GCC vs ICC, 16 threads, -O2)."""

from repro.analysis.tables import render_side_by_side
from repro.calibration.paper_data import TABLE1_GCC, TABLE1_ICC, TABLE2_GCC, PaperRow
from repro.experiments.table1 import run_table1


def test_bench_table1(bench_once):
    result = bench_once(run_table1)
    rows = []
    for app in TABLE1_GCC:
        for compiler, paper_table in (("GCC", TABLE1_GCC), ("ICC", TABLE1_ICC)):
            measured = result.cells[(app, compiler)]
            paper = paper_table[app]
            if app == "fibonacci" and compiler == "GCC":
                # Table I printed the O3 numbers for this row (see tests).
                paper = TABLE2_GCC[app]["O2"]
            rows.append((f"{app} [{compiler}]", measured, paper))
    print()
    print(render_side_by_side("TABLE I — measured vs paper", rows))
    # Shape assertions: every row within 8% on time.
    for label, measured, paper in rows:
        assert abs(measured.time_s - paper.time_s) / paper.time_s < 0.08, label
