"""Benchmarks: regenerate Tables IV-VII (MAESTRO dynamic throttling)
plus the Section IV-B no-throttle overhead check."""

import pytest

from repro.calibration.paper_data import THROTTLE_TABLES, PaperRow
from repro.analysis.tables import render_side_by_side
from repro.experiments.throttling import (
    WELL_SCALING_APPS,
    run_overhead_check,
    run_throttle_table,
)


def _show(result):
    paper = THROTTLE_TABLES[result.app]
    rows = []
    for config, measured in (
        ("16 Threads - Dynamic", result.dynamic16),
        ("16 Threads - Fixed", result.fixed16),
        ("12 Threads - Fixed", result.fixed12),
    ):
        key = {"16 Threads - Dynamic": "dynamic16",
               "16 Threads - Fixed": "fixed16",
               "12 Threads - Fixed": "fixed12"}[config]
        measured_row = PaperRow(measured.time_s, measured.energy_j, measured.watts)
        rows.append((config, measured_row, paper[key]))
    print()
    print(render_side_by_side(f"{result.app} — measured vs paper", rows))


def test_bench_table4_lulesh(bench_once):
    r = bench_once(run_throttle_table, "lulesh")
    _show(r)
    assert r.dynamic_energy_savings > 0.015      # paper: 3.3%
    assert r.dynamic16.watts < r.fixed16.watts - 8.0


def test_bench_table5_dijkstra(bench_once):
    r = bench_once(run_throttle_table, "dijkstra")
    _show(r)
    assert r.fixed12.time_s < r.fixed16.time_s   # 12 threads win
    assert r.dynamic16.time_s < r.fixed16.time_s # dynamic recovers


def test_bench_table6_health(bench_once):
    r = bench_once(run_throttle_table, "bots-health")
    _show(r)
    assert r.dynamic16.watts < r.fixed16.watts
    assert abs(r.dynamic_energy_savings) < 0.03  # paper margin: 1.9%


def test_bench_table7_strassen(bench_once):
    r = bench_once(run_throttle_table, "bots-strassen")
    _show(r)
    assert r.dynamic_energy_savings > 0.01       # paper: 3.2%
    assert r.dynamic16.time_s < r.fixed16.time_s * 1.01  # fastest config


@pytest.mark.parametrize("app", WELL_SCALING_APPS[:2])
def test_bench_overhead(bench_once, app):
    check = bench_once(run_overhead_check, app)
    print(f"\n{app}: throttled={check.throttled} overhead={check.overhead:+.3%} "
          f"(paper allows up to 0.6%)")
    assert not check.throttled
    assert abs(check.overhead) < 0.006
