"""Benchmark: the footnote-2 cold-start experiment."""

import pytest

from repro.experiments.coldstart import run_cold_start


def test_bench_coldstart(bench_once):
    result = bench_once(run_cold_start, "reduction", "gcc")
    print()
    print(result.format())
    # Paper: first run used 3.2% less energy, ~4.8 W less power, with
    # the same execution time.
    assert result.cold.elapsed_s == pytest.approx(result.warm.elapsed_s, rel=0.01)
    assert 0.01 < result.energy_savings < 0.09
    assert result.power_delta_w > 1.0
