"""Benchmark: experiment-service chaos latency (``make bench-service``).

Boots a real service (in-thread, real TCP, real forked workers), pushes
a fixed stream of jobs through it while a chaos thread SIGKILLs every
in-flight worker it can see at a fixed cadence, and reports the numbers
that bound service-backed experiment campaigns: submit→result latency
(p50/p95) and end-to-end throughput — *with* crash redelivery on the
critical path.  Results are compared against the committed baseline in
``BENCH_service.json``.

Usage::

    python benchmarks/bench_service.py             # run + compare, no writes
    python benchmarks/bench_service.py --update    # write current results
    python benchmarks/bench_service.py --update --record-baseline
                                                   # re-stamp the baseline too
    python benchmarks/bench_service.py --fail-above 3.0
                                                   # exit 1 if > 3x baseline p95

Correctness is pinned on every invocation: every submitted job must
reach ``done`` despite the kills, and the cache ledger must show exactly
one execution per digest.  The runner refuses to write anything unless
``--update`` is passed, so a stray run cannot silently move the
goalposts.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_service.json"

JOBS = 16
KILL_EVERY_S = 0.12
MAX_KILLS = 4


def _specs():
    from repro.harness.spec import RunSpec

    return [RunSpec("nqueens", scale=0.05, seed=seed) for seed in range(JOBS)]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _chaos_loop(client, stop: threading.Event, kills: list[int]) -> None:
    """SIGKILL one in-flight worker every ``KILL_EVERY_S``, up to a cap."""
    while not stop.is_set() and len(kills) < MAX_KILLS:
        if stop.wait(KILL_EVERY_S):
            return
        try:
            active = client.stats()["active"]
        except Exception:
            return  # service already shut down
        for entry in active:
            pid = entry.get("pid")
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                    kills.append(pid)
                except OSError:
                    pass
                break


def _run_campaign(cache_root: str) -> dict:
    from repro.harness.cache import ResultCache
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig
    from repro.service.testing import ServiceThread

    config = ServiceConfig(
        port=0, workers=2, queue_depth=JOBS + 4, timeout_s=60.0,
        retries=1, backoff_base_s=0.05, backoff_max_s=0.5,
        max_redeliveries=6, quota_rate=1000.0, quota_burst=1000.0,
        cache_root=cache_root, drain_grace_s=10.0,
    )
    specs = _specs()
    latencies: list[float] = []
    kills: list[int] = []
    stop = threading.Event()
    t_start = time.perf_counter()
    with ServiceThread(config) as svc:
        submitter = ServiceClient(port=svc.port, name="bench", timeout=120.0)
        chaos_client = ServiceClient(port=svc.port, name="chaos",
                                     timeout=10.0)
        chaos = threading.Thread(
            target=_chaos_loop, args=(chaos_client, stop, kills), daemon=True)
        chaos.start()
        try:
            for spec in specs:
                t0 = time.perf_counter()
                done = submitter.submit_and_wait(spec, timeout_s=120.0)
                latencies.append(time.perf_counter() - t0)
                if done["state"] != "done":
                    raise SystemExit(
                        f"FAIL: {spec.describe()} ended {done['state']!r}")
            wall_s = time.perf_counter() - t_start
            counters = dict(submitter.stats()["counters"])
        finally:
            stop.set()
            chaos.join(timeout=10)
            submitter.close()
            chaos_client.close()

    counts = ResultCache(root=cache_root).execution_counts()
    if set(counts) != {spec.digest for spec in specs}:
        raise SystemExit("FAIL: cache ledger is missing executed digests")
    if any(n != 1 for n in counts.values()):
        raise SystemExit(f"FAIL: duplicate executions in ledger: {counts}")

    return {
        "jobs": JOBS,
        "workers_killed": len(kills),
        "crashes": counters.get("crashes", 0),
        "requeues": counters.get("requeues", 0),
        "wall_s": round(wall_s, 4),
        "throughput_jobs_per_s": round(JOBS / wall_s, 3),
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 1),
        "latency_p95_ms": round(_percentile(latencies, 0.95) * 1e3, 1),
        "exactly_once": True,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point (make bench)
# ----------------------------------------------------------------------
def test_bench_service_run(bench_once, tmp_path):
    result = bench_once(lambda: _run_campaign(str(tmp_path / "cache")))
    assert result["exactly_once"]
    assert result["jobs"] == JOBS


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_service.py",
        description="service chaos benchmark vs the committed baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_service.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--fail-above", type=float, default=None, metavar="X",
                        help="exit 1 if p95 latency exceeds X times the "
                             "committed baseline (default: report only)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_service.json)")

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        current = _run_campaign(os.path.join(tmp, "cache"))

    stored = json.loads(args.json.read_text()) if args.json.exists() else {}
    baseline = stored.get("baseline")

    print(f"service chaos benchmark ({current['jobs']} jobs, "
          f"{current['workers_killed']} workers killed):")
    print(f"  throughput   {current['throughput_jobs_per_s']:>8.2f} jobs/s "
          f"({current['wall_s'] * 1e3:.0f} ms wall)")
    print(f"  latency p50  {current['latency_p50_ms']:>8.1f} ms")
    print(f"  latency p95  {current['latency_p95_ms']:>8.1f} ms")
    print(f"  crashes={current['crashes']} requeues={current['requeues']} "
          f"exactly-once: yes")
    if baseline:
        ratio = (current["latency_p95_ms"] / baseline["latency_p95_ms"]
                 if baseline["latency_p95_ms"] > 0 else 0.0)
        print(f"  baseline: p95 {baseline['latency_p95_ms']:.1f} ms, "
              f"{baseline['throughput_jobs_per_s']:.2f} jobs/s "
              f"-> current is {ratio:.2f}x baseline p95")
        if args.fail_above is not None and ratio > args.fail_above:
            print(f"FAIL: p95 latency regressed {ratio:.2f}x > "
                  f"--fail-above {args.fail_above:.2f}x", file=sys.stderr)
            return 1

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = dict(current)
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = current
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
