"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Dual-metric vs power-only policy** (Section IV-A): power alone
   throttles efficient high-power programs and *increases* their energy;
   adding the memory-concurrency condition avoids it.
2. **Duty-cycle vs DVFS actuation** (Section IV): DVFS is chip-global —
   slowing every core to shed the same power costs far more time than
   idling the excess threads per-core.
3. **Spin vs OS idle** (Table IV discussion): parking threads at the OS
   saves more power than the duty-cycled spin loop, bounding what the
   runtime mechanism leaves on the table.
"""

import pytest

from repro.config import RuntimeConfig, ThrottleConfig
from repro.experiments.runner import run_measurement
from repro.calibration.profiles import get_profile


def test_bench_ablation_power_only_policy(bench_once):
    """Power-only throttling hurts an efficient high-power program
    (ICC bots-fib runs at 157 W with near-linear speedup)."""

    def run_all():
        dual = run_measurement("bots-fib", "icc", "O2", throttle=True)
        power_only = run_measurement(
            "bots-fib", "icc", "O2", throttle=True,
            throttle_config=ThrottleConfig(enabled=True, power_only=True),
        )
        baseline = run_measurement("bots-fib", "icc", "O2")
        return dual, power_only, baseline

    dual, power_only, baseline = bench_once(run_all)
    print(
        f"\nbots-fib (icc): baseline {baseline.time_s:.2f}s/{baseline.energy_j:.0f}J | "
        f"dual-metric {dual.time_s:.2f}s/{dual.energy_j:.0f}J "
        f"(throttled {dual.run.throttle_activations}x) | "
        f"power-only {power_only.time_s:.2f}s/{power_only.energy_j:.0f}J "
        f"(throttled {power_only.run.throttle_activations}x)"
    )
    # Dual metric leaves the efficient program alone...
    assert dual.run.throttle_activations == 0
    assert dual.energy_j == pytest.approx(baseline.energy_j, rel=0.01)
    # ...power-only throttles it and costs time and energy.
    assert power_only.run.throttle_activations >= 1
    assert power_only.time_s > baseline.time_s * 1.05
    assert power_only.energy_j > baseline.energy_j


def test_bench_ablation_duty_vs_dvfs(bench_once):
    """Shedding LULESH's excess parallelism per-core (duty-cycled spin)
    beats slowing the whole chip (DVFS) for the same power budget."""
    profile = get_profile("lulesh", "maestro", "O3")

    def run_all():
        duty = run_measurement("lulesh", "maestro", "O3", throttle=True,
                               profile=profile)
        baseline = run_measurement("lulesh", "maestro", "O3", profile=profile)
        return duty, baseline

    duty, baseline = bench_once(run_all)

    # DVFS comparator: run all 16 cores at reduced frequency chosen to
    # draw about the same average power as the throttled run.
    from repro.apps import build_app
    from repro.openmp import OmpEnv
    from repro.qthreads import Runtime
    from repro.throttle import DvfsActuator

    rt = Runtime(runtime_config=RuntimeConfig(num_threads=16))
    actuator = DvfsActuator(rt.node)
    for socket in range(2):
        actuator.set_frequency_ratio(socket, 0.75)
    dvfs = rt.run(build_app("lulesh", OmpEnv(num_threads=16), profile=profile))

    print(
        f"\nlulesh: fixed16 {baseline.time_s:.2f}s/{baseline.watts:.1f}W | "
        f"duty-throttle {duty.time_s:.2f}s/{duty.watts:.1f}W/{duty.energy_j:.0f}J | "
        f"DVFS-0.75 {dvfs.elapsed_s:.2f}s/{dvfs.avg_power_w:.1f}W/{dvfs.energy_j:.0f}J"
    )
    # Both shed power vs the fixed-16 run...
    assert duty.watts < baseline.watts
    assert dvfs.avg_power_w < baseline.watts
    # ...but chip-global DVFS pays more time for it: worse energy-delay.
    assert duty.time_s < dvfs.elapsed_s
    assert duty.energy_j * duty.time_s < dvfs.energy_j * dvfs.elapsed_s


def test_bench_ablation_spin_vs_os_idle(bench_once):
    """Table IV: OS-parking the four excess threads saves more power
    than the spin loop ('an additional 10.2 W'), at equal time."""
    profile = get_profile("lulesh", "maestro", "O3")

    def run_all():
        dynamic = run_measurement("lulesh", "maestro", "O3", throttle=True,
                                  profile=profile)
        fixed12 = run_measurement("lulesh", "maestro", "O3", threads=12,
                                  profile=profile)
        return dynamic, fixed12

    dynamic, fixed12 = bench_once(run_all)
    extra_w = dynamic.watts - fixed12.watts
    print(
        f"\nlulesh: dynamic(spin) {dynamic.watts:.1f}W vs 12-fixed(idle) "
        f"{fixed12.watts:.1f}W — spin loop costs {extra_w:+.1f}W "
        f"(paper: +10.2W); times {dynamic.time_s:.2f}s vs {fixed12.time_s:.2f}s"
    )
    assert 4.0 < extra_w < 16.0
    assert dynamic.time_s == pytest.approx(fixed12.time_s, rel=0.06)
