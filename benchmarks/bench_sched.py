"""Benchmark: cluster-scheduler throughput (``make bench-sched``).

Times one fixed scheduled cluster run — a bursty trace over four nodes
under a tight global budget, the configuration the acceptance recipe
uses — and reports the two rates that bound scheduler scale studies:
host-side engine throughput (events/s of wall time) and simulated job
throughput (jobs completed per second of *sim* time).  Results are
compared against the committed baseline in ``BENCH_sched.json``.

Usage::

    python benchmarks/bench_sched.py               # run + compare, no writes
    python benchmarks/bench_sched.py --update      # write current results
    python benchmarks/bench_sched.py --update --record-baseline
                                                   # re-stamp the baseline too
    python benchmarks/bench_sched.py --fail-above 3.0
                                                   # exit 1 if > 3x baseline wall

Correctness is pinned on every invocation: the run is executed twice and
the two :class:`~repro.sched.result.SchedResult`s must be bit-identical
(the timing is best-of, so the determinism check is free).  The runner
refuses to write anything unless ``--update`` is passed, so a stray run
cannot silently move the goalposts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_sched.json"


def _bench_spec():
    from repro.sched import SchedSpec

    return SchedSpec(profile="bursty", policy="waterfill", nodes=4,
                     budget_w=400.0, jobs=12, seed=0)


# ----------------------------------------------------------------------
# pytest-benchmark entry point (make bench)
# ----------------------------------------------------------------------
def test_bench_sched_run(bench_once):
    result = bench_once(lambda: _bench_spec().execute())
    assert result.completed > 0
    assert result.budget_violations == ()


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_sched.py",
        description="cluster-scheduler benchmark vs the committed baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_sched.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats (default 3)")
    parser.add_argument("--fail-above", type=float, default=None, metavar="X",
                        help="exit 1 if best wall time exceeds X times the "
                             "committed baseline (default: report only)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_sched.json)")

    spec = _bench_spec()
    best = float("inf")
    results = []
    for _ in range(max(2, args.repeats)):  # >= 2 runs: determinism is free
        t0 = time.perf_counter()
        results.append(spec.execute())
        best = min(best, time.perf_counter() - t0)
    if any(r != results[0] for r in results[1:]):
        print("FAIL: repeated runs are not bit-identical", file=sys.stderr)
        return 1
    result = results[0]

    current = {
        "spec": spec.describe(),
        "jobs_completed": result.completed,
        "sim_makespan_s": round(result.makespan_s, 4),
        "engine_events": result.engine_events,
        "wall_s": round(best, 4),
        "events_per_s": round(result.engine_events / best, 1),
        "sim_jobs_per_s": round(result.completed / result.makespan_s, 4),
        "bit_identical": True,
    }

    stored = json.loads(args.json.read_text()) if args.json.exists() else {}
    baseline = stored.get("baseline")

    print(f"sched benchmark ({current['spec']}, best of {max(2, args.repeats)}):")
    print(f"  wall              {best * 1e3:>10.1f} ms")
    print(f"  engine throughput {current['events_per_s'] / 1e3:>10.1f}k ev/s "
          f"({result.engine_events} events)")
    print(f"  job throughput    {current['sim_jobs_per_s']:>10.3f} jobs/s of "
          f"sim time ({result.completed} jobs / {result.makespan_s:.1f} s)")
    print("  repeated runs bit-identical: yes")
    if baseline:
        ratio = best / baseline["wall_s"] if baseline["wall_s"] > 0 else 0.0
        print(f"  baseline: {baseline['wall_s'] * 1e3:.1f} ms, "
              f"{baseline['events_per_s'] / 1e3:.1f}k ev/s "
              f"-> current is {ratio:.2f}x baseline wall")
        if args.fail_above is not None and ratio > args.fail_above:
            print(f"FAIL: wall time regressed {ratio:.2f}x > "
                  f"--fail-above {args.fail_above:.2f}x", file=sys.stderr)
            return 1

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = dict(current)
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = current
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
