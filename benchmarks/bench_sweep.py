"""Benchmark: serial vs process-parallel sweep execution (``make bench-sweep``).

Times one fixed 8-spec sweep — four fast Table I applications under both
compilers — through :class:`repro.harness.BatchExecutor` twice: serially
(``workers=0``, the deterministic reference path) and fanned out over a
process pool (``workers=min(4, cores)``), with the cache and all sinks
disabled so the numbers are pure execution.  Results are compared against
the committed baseline in ``BENCH_sweep.json``.

Usage::

    python benchmarks/bench_sweep.py               # run + compare, no writes
    python benchmarks/bench_sweep.py --update      # write current results
    python benchmarks/bench_sweep.py --update --record-baseline
                                                   # re-stamp the baseline too

The parallel path can only win wall-clock on a multi-core host; the
``cores`` field records what the run had to work with, so a 1.0x ratio
on a single-core box reads as environment, not regression.  Correctness
is pinned separately: the runner asserts the parallel records are
bit-identical to the serial ones on every invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_sweep.json"

#: The fixed sweep: fast Table I cells, both compilers.
SWEEP_APPS = ("reduction", "mergesort", "nqueens", "fibonacci")


def _sweep_specs():
    from repro.harness import RunSpec

    return [
        RunSpec(app, compiler=compiler, optlevel="O2", threads=16)
        for app in SWEEP_APPS
        for compiler in ("gcc", "icc")
    ]


def _time_sweep(workers: int, repeats: int):
    from repro.harness import BatchExecutor

    specs = _sweep_specs()
    best = float("inf")
    records = None
    for _ in range(repeats):
        harness = BatchExecutor(workers=workers)
        t0 = time.perf_counter()
        records = harness.run(specs, sweep=f"bench-w{workers}")
        best = min(best, time.perf_counter() - t0)
    return best, records


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_sweep.py",
        description="serial vs parallel sweep benchmark vs the committed baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_sweep.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats per mode (default 3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel worker count "
                             "(default: min(4, cores), at least 2 so the "
                             "pool path always runs)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_sweep.json)")

    cores = os.cpu_count() or 1
    workers = args.workers if args.workers is not None else max(2, min(4, cores))

    serial_s, serial_records = _time_sweep(0, args.repeats)
    parallel_s, parallel_records = _time_sweep(workers, args.repeats)
    if parallel_records != serial_records:
        print("FAIL: parallel records differ from serial records",
              file=sys.stderr)
        return 1

    ratio = serial_s / parallel_s if parallel_s > 0 else float("inf")
    current = {
        "specs": len(serial_records),
        "cores": cores,
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_speedup": round(ratio, 3),
        "bit_identical": True,
    }

    stored = json.loads(args.json.read_text()) if args.json.exists() else {}
    baseline = stored.get("baseline")

    print(f"sweep benchmark ({current['specs']} specs, best of {args.repeats}, "
          f"{cores} core(s)):")
    print(f"  serial            {serial_s * 1e3:>10.1f} ms")
    print(f"  parallel (w={workers})    {parallel_s * 1e3:>10.1f} ms   "
          f"speedup {ratio:>5.2f}x")
    print("  parallel records bit-identical to serial: yes")
    if baseline:
        print(f"  baseline: serial {baseline['serial_s'] * 1e3:.1f} ms, "
              f"parallel {baseline['parallel_s'] * 1e3:.1f} ms "
              f"({baseline['parallel_speedup']:.2f}x on "
              f"{baseline['cores']} core(s))")
    if cores == 1:
        print("  (single-core host: parallel cannot beat serial here; "
          "the speedup column is environment, not regression)")

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = dict(current)
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = current
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
