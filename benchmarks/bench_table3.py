"""Benchmark: regenerate Table III (ICC optimization levels, -ipo sparselu)."""

from repro.analysis.tables import render_side_by_side
from repro.calibration.paper_data import TABLE3_ICC
from repro.experiments.table23 import run_table3


def test_bench_table3(bench_once):
    result = bench_once(run_table3)
    rows = []
    for app, paper_rows in TABLE3_ICC.items():
        for level, paper in paper_rows.items():
            rows.append((f"{app} [-{level}]", result.cells[(app, level)], paper))
    print()
    print(render_side_by_side("TABLE III — measured vs paper", rows))
    for label, measured, paper in rows:
        assert abs(measured.time_s - paper.time_s) / paper.time_s < 0.10, label
