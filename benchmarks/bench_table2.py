"""Benchmark: regenerate Table II (GCC optimization levels)."""

from repro.analysis.tables import render_side_by_side
from repro.calibration.paper_data import TABLE2_GCC
from repro.experiments.table23 import run_table2


def test_bench_table2(bench_once):
    result = bench_once(run_table2)
    rows = []
    for app, paper_rows in TABLE2_GCC.items():
        for level, paper in paper_rows.items():
            rows.append((f"{app} [-{level}]", result.cells[(app, level)], paper))
    print()
    print(render_side_by_side("TABLE II — measured vs paper", rows))
    for label, measured, paper in rows:
        assert abs(measured.time_s - paper.time_s) / paper.time_s < 0.10, label
