"""Benchmark: observability overhead (``make bench-obs``).

Two numbers bound what instrumentation is allowed to cost:

* **record latency** — nanoseconds per counter increment and per
  histogram observation, labeled and unlabeled, measured over a tight
  loop.  This is the price every instrumented hot path pays.
* **sweep overhead** — wall time of an identical serial BatchExecutor
  sweep with and without a registry + tracer attached (best-of-N on
  both sides).  The instrumented/bare ratio minus one is the observer
  overhead fraction, and it must stay **under 5%** — the registry also
  self-reports its estimated overhead, which is cross-checked against
  the directly measured gap.

Results are compared against the committed baseline in
``BENCH_obs.json``.

Usage::

    python benchmarks/bench_obs.py             # run + compare, no writes
    python benchmarks/bench_obs.py --update    # write current results
    python benchmarks/bench_obs.py --update --record-baseline
                                               # re-stamp the baseline too
    python benchmarks/bench_obs.py --fail-above 3.0
                                               # exit 1 if > 3x baseline

The <5% overhead cap is enforced on every invocation regardless of
flags; the baseline guard additionally pins the record latencies so a
slow regression inside the registry cannot hide under the cap.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_obs.json"

RECORD_OPS = 200_000
SWEEP_SPECS = 4
SWEEP_REPEATS = 3

#: Hard acceptance cap on instrumented-vs-bare sweep overhead.
MAX_OVERHEAD_FRACTION = 0.05


def _bench_record() -> dict:
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    plain = reg.counter("bench_plain_total", "bench")
    labeled = reg.counter("bench_labeled_total", "bench", labels=("op",))
    hist = reg.histogram("bench_seconds", "bench")

    t0 = time.perf_counter()
    for _ in range(RECORD_OPS):
        plain.inc()
    plain_ns = (time.perf_counter() - t0) / RECORD_OPS * 1e9

    t0 = time.perf_counter()
    for _ in range(RECORD_OPS):
        labeled.inc(op="submit")
    labeled_ns = (time.perf_counter() - t0) / RECORD_OPS * 1e9

    t0 = time.perf_counter()
    for i in range(RECORD_OPS):
        hist.observe(i * 1e-6)
    hist_ns = (time.perf_counter() - t0) / RECORD_OPS * 1e9

    t0 = time.perf_counter()
    snap = reg.snapshot()
    snapshot_ms = (time.perf_counter() - t0) * 1e3

    if plain.value() != RECORD_OPS:
        raise SystemExit("FAIL: counter lost increments")
    if snap.instruments["bench_seconds"].series[()].count != RECORD_OPS:
        raise SystemExit("FAIL: histogram lost observations")
    return {
        "counter_ns": round(plain_ns, 1),
        "labeled_counter_ns": round(labeled_ns, 1),
        "histogram_ns": round(hist_ns, 1),
        "snapshot_ms": round(snapshot_ms, 3),
    }


def _sweep_once(registry, tracer) -> float:
    from repro.harness.executor import BatchExecutor
    from repro.harness.spec import RunSpec

    specs = [RunSpec("nqueens", threads=2, scale=0.05, seed=seed)
             for seed in range(SWEEP_SPECS)]
    executor = BatchExecutor(workers=1, cache=None, bus=None,
                             registry=registry, tracer=tracer)
    t0 = time.perf_counter()
    records = executor.run(specs, sweep="bench-obs")
    elapsed = time.perf_counter() - t0
    if len(records) != SWEEP_SPECS:
        raise SystemExit("FAIL: sweep dropped records")
    return elapsed


def _bench_sweep() -> dict:
    from repro.obs import MetricsRegistry, SpanRecorder

    bare = min(_sweep_once(None, None) for _ in range(SWEEP_REPEATS))
    instrumented = None
    registry = None
    for _ in range(SWEEP_REPEATS):
        reg = MetricsRegistry()
        elapsed = _sweep_once(reg, SpanRecorder())
        if instrumented is None or elapsed < instrumented:
            instrumented, registry = elapsed, reg
    overhead = max(0.0, instrumented / bare - 1.0)
    self_estimate_s = registry.estimated_overhead_s
    return {
        "sweep_specs": SWEEP_SPECS,
        "bare_s": round(bare, 4),
        "instrumented_s": round(instrumented, 4),
        "overhead_fraction": round(overhead, 4),
        "self_estimated_overhead_s": round(self_estimate_s, 6),
    }


def _run_all() -> dict:
    current = {**_bench_record(), **_bench_sweep()}
    if current["overhead_fraction"] > MAX_OVERHEAD_FRACTION:
        raise SystemExit(
            f"FAIL: instrumented sweep overhead "
            f"{current['overhead_fraction']:.1%} exceeds the "
            f"{MAX_OVERHEAD_FRACTION:.0%} cap")
    return current


# ----------------------------------------------------------------------
# pytest-benchmark entry point (make bench)
# ----------------------------------------------------------------------
def test_bench_obs_run(bench_once):
    result = bench_once(_run_all)
    assert result["overhead_fraction"] <= MAX_OVERHEAD_FRACTION
    assert result["counter_ns"] > 0


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_obs.py",
        description="observability overhead benchmark vs the committed "
                    "baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_obs.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--fail-above", type=float, default=None, metavar="X",
                        help="exit 1 if counter record latency exceeds X "
                             "times the committed baseline "
                             "(default: report only)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_obs.json)")

    current = _run_all()

    stored = json.loads(args.json.read_text()) if args.json.exists() else {}
    baseline = stored.get("baseline")

    print("observability overhead benchmark:")
    print(f"  counter inc            {current['counter_ns']:>8.1f} ns/op")
    print(f"  counter inc (labeled)  {current['labeled_counter_ns']:>8.1f} "
          f"ns/op")
    print(f"  histogram observe      {current['histogram_ns']:>8.1f} ns/op")
    print(f"  snapshot               {current['snapshot_ms']:>8.3f} ms")
    print(f"  sweep bare             {current['bare_s']:>8.4f} s "
          f"({current['sweep_specs']} specs, best of {SWEEP_REPEATS})")
    print(f"  sweep instrumented     {current['instrumented_s']:>8.4f} s")
    print(f"  observer overhead      {current['overhead_fraction']:>8.1%} "
          f"(cap {MAX_OVERHEAD_FRACTION:.0%}); registry self-estimate "
          f"{current['self_estimated_overhead_s'] * 1e3:.3f} ms")
    if baseline:
        ratio = (current["counter_ns"] / baseline["counter_ns"]
                 if baseline["counter_ns"] > 0 else 0.0)
        print(f"  baseline: counter {baseline['counter_ns']:.1f} ns, "
              f"overhead {baseline['overhead_fraction']:.1%} "
              f"-> current counter is {ratio:.2f}x baseline")
        if args.fail_above is not None and ratio > args.fail_above:
            print(f"FAIL: counter latency regressed {ratio:.2f}x > "
                  f"--fail-above {args.fail_above:.2f}x", file=sys.stderr)
            return 1

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = dict(current)
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = current
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
