"""Benchmark: co-scheduling profiling throughput (``make bench-cosched``).

Times the two hot paths of the contention-prediction pipeline: the
profiling sweep (solo baselines + co-run cells through the harness,
reduced to a :class:`~repro.cosched.profile.ProfileStore`) and the
predictor itself (least-squares fit over the bundled artifact, then a
tight predict loop — the per-tick cost the ``predicted`` placement
policy pays).  Results are compared against the committed baseline in
``BENCH_cosched.json``.

Usage::

    python benchmarks/bench_cosched.py             # run + compare, no writes
    python benchmarks/bench_cosched.py --update    # write current results
    python benchmarks/bench_cosched.py --update --record-baseline
                                                   # re-stamp the baseline too
    python benchmarks/bench_cosched.py --fail-above 3.0
                                                   # exit 1 if > 3x baseline wall

Correctness is pinned on every invocation: the sweep runs twice and the
two reduced stores must agree digest-for-digest (timing is best-of, so
the determinism check is free), and the fitted model must equal the
bundled one refit in-process.  The runner refuses to write anything
unless ``--update`` is passed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_cosched.json"

#: A mid-size grid: 3 apps x 2 injectors x 1 level -> 3 app solos,
#: 2 injector solos and 6 co-run cells (11 harness specs).
BENCH_APPS = ("mergesort", "nqueens", "reduction")
BENCH_INJECTORS = ("inject-membw", "inject-coherence")
BENCH_LEVELS = (1.0,)

#: Predict-loop size: enough iterations that the per-call cost
#: dominates the loop overhead.
PREDICT_CALLS = 20_000


def _run_sweep():
    from repro.experiments.coschedsweep import run_cosched_sweep
    from repro.harness import BatchExecutor

    # A fresh cache-less executor: the benchmark times execution, not
    # disk replay.
    return run_cosched_sweep(
        BENCH_APPS, BENCH_INJECTORS, BENCH_LEVELS,
        harness=BatchExecutor(),
    )


def _predict_loop(model, calls: int) -> float:
    """Sum of predicted EDPs over a pressure ramp (keeps the loop honest)."""
    total = 0.0
    apps = BENCH_APPS
    for i in range(calls):
        app = apps[i % len(apps)]
        pressure = (i % 11) / 10.0
        total += model.predict_edp(app, 8, 0.15, pressure)
    return total


# ----------------------------------------------------------------------
# pytest-benchmark entry point (make bench)
# ----------------------------------------------------------------------
def test_bench_cosched_sweep(bench_once):
    result = bench_once(_run_sweep)
    assert len(result.store.profiles) == len(BENCH_APPS) + len(BENCH_INJECTORS)
    assert result.model.entries


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_cosched.py",
        description="co-scheduling pipeline benchmark vs the committed baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_cosched.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats (default 3)")
    parser.add_argument("--fail-above", type=float, default=None, metavar="X",
                        help="exit 1 if best sweep wall time exceeds X times "
                             "the committed baseline (default: report only)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_cosched.json)")

    from repro.cosched import PredictorModel, default_model, default_store

    # --- the profiling sweep, best-of-N, determinism pinned -----------
    best_sweep = float("inf")
    results = []
    for _ in range(max(2, args.repeats)):  # >= 2 runs: determinism is free
        t0 = time.perf_counter()
        results.append(_run_sweep())
        best_sweep = min(best_sweep, time.perf_counter() - t0)
    digests = {r.store.digest for r in results}
    if len(digests) != 1:
        print("FAIL: repeated sweeps are not bit-identical", file=sys.stderr)
        return 1
    result = results[0]
    cells = sum(len(p.cells) for p in result.store.profiles)
    specs = len(result.records)

    # --- predictor fit over the bundled artifact ----------------------
    store = default_store()
    best_fit = float("inf")
    for _ in range(max(2, args.repeats)):
        t0 = time.perf_counter()
        model = PredictorModel.fit(store)
        best_fit = min(best_fit, time.perf_counter() - t0)
    if model != default_model():
        print("FAIL: refit model diverges from the bundled one",
              file=sys.stderr)
        return 1

    # --- the predict loop the placement policy pays per tick ----------
    best_predict = float("inf")
    for _ in range(max(2, args.repeats)):
        t0 = time.perf_counter()
        _predict_loop(model, PREDICT_CALLS)
        best_predict = min(best_predict, time.perf_counter() - t0)

    current = {
        "grid": f"{len(BENCH_APPS)} apps x {len(BENCH_INJECTORS)} injectors "
                f"x {len(BENCH_LEVELS)} levels ({specs} specs)",
        "sweep_wall_s": round(best_sweep, 4),
        "specs_per_s": round(specs / best_sweep, 1),
        "corun_cells": cells,
        "store_digest": result.store.digest[:16],
        "fit_wall_ms": round(best_fit * 1e3, 3),
        "fit_entries": len(model.entries),
        "predicts_per_s": round(PREDICT_CALLS / best_predict, 0),
        "bit_identical": True,
    }

    stored = json.loads(args.json.read_text()) if args.json.exists() else {}
    baseline = stored.get("baseline")

    print(f"cosched benchmark ({current['grid']}, "
          f"best of {max(2, args.repeats)}):")
    print(f"  sweep wall        {best_sweep * 1e3:>10.1f} ms "
          f"({current['specs_per_s']} specs/s, {cells} co-run cells)")
    print(f"  predictor fit     {best_fit * 1e3:>10.2f} ms "
          f"({len(model.entries)} entries over the bundled store)")
    print(f"  predict loop      {current['predicts_per_s'] / 1e3:>10.1f}k "
          f"predictions/s")
    print("  repeated sweeps bit-identical: yes")
    if baseline:
        ratio = (best_sweep / baseline["sweep_wall_s"]
                 if baseline["sweep_wall_s"] > 0 else 0.0)
        print(f"  baseline: {baseline['sweep_wall_s'] * 1e3:.1f} ms sweep, "
              f"{baseline['predicts_per_s'] / 1e3:.1f}k predicts/s "
              f"-> current is {ratio:.2f}x baseline sweep wall")
        if args.fail_above is not None and ratio > args.fail_above:
            print(f"FAIL: sweep wall regressed {ratio:.2f}x > "
                  f"--fail-above {args.fail_above:.2f}x", file=sys.stderr)
            return 1

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = dict(current)
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = current
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
