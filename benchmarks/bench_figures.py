"""Benchmarks: regenerate Figures 1-4 (speedup & normalized energy sweeps).

One benchmark per figure; each prints the full series and asserts the
paper's qualitative scaling claims.
"""

import pytest

from repro.calibration.paper_data import SPEEDUP16
from repro.experiments.figures import run_figure


def _print_figure(result):
    print()
    print(result.format())


def test_bench_fig1_simple_lulesh_gcc(bench_once):
    result = bench_once(run_figure, "fig1")
    _print_figure(result)
    s = result.series
    assert s["nqueens"].speedup(16) > 13.0                 # scales to 16
    assert s["mergesort"].speedup(16) == pytest.approx(1.85, abs=0.3)
    assert s["dijkstra"].speedup(8) > 6.0                  # scales to 8
    assert s["fibonacci"].speedup(16) < 0.8                # serial wins
    assert s["reduction"].speedup(16) < 0.4                # serial wins big
    assert s["lulesh"].speedup(16) == pytest.approx(4.0, rel=0.15)
    # Poor scalers: energy minimum below 16 threads.
    for app in ("lulesh", "dijkstra"):
        assert s[app].min_energy_threads < 16


def test_bench_fig2_simple_lulesh_icc(bench_once):
    result = bench_once(run_figure, "fig2")
    _print_figure(result)
    s = result.series
    # ICC's fibonacci is optimizer-transformed and scales (Table III).
    assert s["fibonacci"].speedup(16) > 5.0
    assert s["mergesort"].speedup(16) == pytest.approx(1.85, abs=0.3)
    assert s["lulesh"].speedup(16) == pytest.approx(4.0, rel=0.15)


def test_bench_fig3_bots_gcc(bench_once):
    result = bench_once(run_figure, "fig3")
    _print_figure(result)
    s = result.series
    assert s["bots-health"].speedup(16) == pytest.approx(6.7, rel=0.15)
    assert s["bots-sort"].speedup(16) == pytest.approx(12.6, rel=0.15)
    assert s["bots-strassen"].speedup(16) == pytest.approx(4.9, rel=0.15)
    # "Most of the BOTS tests have near linear speedup."
    for app in ("bots-alignment-for", "bots-fib", "bots-nqueens"):
        assert s[app].speedup(16) > 13.0


def test_bench_fig4_bots_icc(bench_once):
    result = bench_once(run_figure, "fig4")
    _print_figure(result)
    s = result.series
    assert s["bots-health"].speedup(16) == pytest.approx(6.7, rel=0.15)
    assert s["bots-strassen"].speedup(16) == pytest.approx(4.9, rel=0.15)
    for app in ("bots-alignment-single", "bots-sparselu-single"):
        assert s[app].speedup(16) > 13.0
