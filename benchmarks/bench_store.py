"""Benchmark: sharded result-store throughput (``make bench-store``).

Drives the store the way a million-job campaign does — a burst of
``put``s from distinct digests, point ``get``s, and repeated
``execution_counts()``/``info()`` queries — and reports the numbers that
bound campaign bookkeeping: put/get throughput and the *warm* query
latency, which the sqlite index's incremental tail-sync is supposed to
hold flat regardless of how many entries the ledgers hold.  Results are
compared against the committed baseline in ``BENCH_store.json``.

Usage::

    python benchmarks/bench_store.py             # run + compare, no writes
    python benchmarks/bench_store.py --update    # write current results
    python benchmarks/bench_store.py --update --record-baseline
                                                 # re-stamp the baseline too
    python benchmarks/bench_store.py --fail-above 3.0
                                                 # exit 1 if > 3x baseline

Correctness is pinned on every invocation: after the burst every digest
must count exactly once, compaction must not change a single count, and
the warm query must re-read zero ledger bytes (offset == file size for
every shard).  The runner refuses to write anything unless ``--update``
is passed, so a stray run cannot silently move the goalposts.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sqlite3
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:  # script mode: no PYTHONPATH needed
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Committed perf-trajectory file, at the repo root.
BENCH_PATH = _REPO_ROOT / "BENCH_store.json"

PUTS = 400
GETS = 400
WARM_QUERIES = 50


def _run_burst(root: str) -> dict:
    from repro.harness.cache import ResultCache
    from repro.harness.executor import execute_spec
    from repro.harness.spec import RunSpec

    cache = ResultCache(root=root)
    template = execute_spec(RunSpec("mergesort", scale=0.05))
    specs = [RunSpec("mergesort", scale=0.05, seed=seed)
             for seed in range(PUTS)]
    records = [dataclasses.replace(template, spec=spec) for spec in specs]

    t0 = time.perf_counter()
    for spec, record in zip(specs, records):
        cache.put(spec, record)
    put_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for spec in specs[:GETS]:
        if cache.get(spec) is None:
            raise SystemExit(f"FAIL: miss on just-put {spec.describe()}")
    get_s = time.perf_counter() - t0

    # Cold query folds every ledger tail once; warm queries must be
    # pure index reads.
    t0 = time.perf_counter()
    counts = cache.execution_counts()
    cold_ms = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    for _ in range(WARM_QUERIES):
        cache.execution_counts()
        cache.info()
    warm_ms = (time.perf_counter() - t0) * 1e3 / (2 * WARM_QUERIES)

    if len(counts) != PUTS or any(n != 1 for n in counts.values()):
        raise SystemExit("FAIL: execution counts are not exactly-once")
    with sqlite3.connect(Path(root) / "index.sqlite") as conn:
        offsets = dict(conn.execute(
            "SELECT shard, offset FROM shard_offsets"))
    sizes = {p.stem: p.stat().st_size
             for p in cache.ledgers_dir.glob("*.jsonl")}
    if offsets != sizes:
        raise SystemExit("FAIL: warm query left unfolded ledger bytes")

    compacted = cache.compact()
    if cache.execution_counts() != counts:
        raise SystemExit("FAIL: compaction changed execution counts")

    return {
        "puts": PUTS,
        "shards": compacted["shards"],
        "put_per_s": round(PUTS / put_s, 1),
        "get_per_s": round(GETS / get_s, 1),
        "cold_query_ms": round(cold_ms, 2),
        "warm_query_ms": round(warm_ms, 3),
        "exactly_once": True,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point (make bench)
# ----------------------------------------------------------------------
def test_bench_store_run(bench_once, tmp_path):
    result = bench_once(lambda: _run_burst(str(tmp_path / "cache")))
    assert result["exactly_once"]
    assert result["puts"] == PUTS


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_store.py",
        description="sharded store benchmark vs the committed baseline",
    )
    parser.add_argument("--update", action="store_true",
                        help="write results to BENCH_store.json "
                             "(without this flag nothing is written)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="with --update: re-stamp the baseline section "
                             "from this run (intentional goalpost move)")
    parser.add_argument("--fail-above", type=float, default=None, metavar="X",
                        help="exit 1 if warm query latency exceeds X times "
                             "the committed baseline (default: report only)")
    parser.add_argument("--json", type=Path, default=BENCH_PATH,
                        help=f"results file (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    if args.record_baseline and not args.update:
        parser.error("--record-baseline requires --update "
                     "(refusing to overwrite BENCH_store.json)")

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        current = _run_burst(str(Path(tmp) / "cache"))

    stored = json.loads(args.json.read_text()) if args.json.exists() else {}
    baseline = stored.get("baseline")

    print(f"sharded store benchmark ({current['puts']} puts, "
          f"{current['shards']} shards):")
    print(f"  put          {current['put_per_s']:>8.1f} puts/s")
    print(f"  get (hit)    {current['get_per_s']:>8.1f} gets/s")
    print(f"  query cold   {current['cold_query_ms']:>8.2f} ms")
    print(f"  query warm   {current['warm_query_ms']:>8.3f} ms")
    print("  exactly-once: yes; compaction count-preserving: yes")
    if baseline:
        ratio = (current["warm_query_ms"] / baseline["warm_query_ms"]
                 if baseline["warm_query_ms"] > 0 else 0.0)
        print(f"  baseline: warm {baseline['warm_query_ms']:.3f} ms, "
              f"{baseline['put_per_s']:.1f} puts/s "
              f"-> current is {ratio:.2f}x baseline warm query")
        if args.fail_above is not None and ratio > args.fail_above:
            print(f"FAIL: warm query regressed {ratio:.2f}x > "
                  f"--fail-above {args.fail_above:.2f}x", file=sys.stderr)
            return 1

    if not args.update:
        if args.json.exists():
            print(f"(read-only run; pass --update to rewrite {args.json.name})")
        return 0

    if args.record_baseline or "baseline" not in stored:
        stored["baseline"] = dict(current)
        print(f"baseline re-stamped from this run -> {args.json.name}")
    stored["schema"] = 1
    stored["current"] = current
    args.json.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
