"""Benchmarks for the extensions: power clamp, autotuner, cluster.

These are forward-looking experiments the paper motivates but does not
run; the benchmarks record their headline numbers alongside the paper
reproduction.
"""

import pytest

from repro.cluster import run_cluster
from repro.qthreads import Spawn, Taskwait, Work
from repro.rcr import Blackboard, RCRDaemon
from repro.throttle.clamp import PowerClampController
from repro.tuner import Objective, tune_threads
from tests.conftest import make_runtime


def test_bench_power_clamp(bench_once):
    """Clamp a ~150 W workload to 110 W and measure what it costs."""

    def run(budget):
        rt = make_runtime(16)
        bb = Blackboard()
        daemon = RCRDaemon(rt.engine, rt.node, bb)
        daemon.start()
        clamp = None
        if budget is not None:
            clamp = PowerClampController(rt.engine, rt.scheduler, bb, budget)
            clamp.start()

        def body():
            yield Work(0.01, mem_fraction=0.2, power_scale=1.3)
            return 1

        def program():
            handles = []
            for _ in range(800):
                handle = yield Spawn(body())
                handles.append(handle)
            yield Taskwait()
            return len(handles)

        res = rt.run(program())
        return res

    def run_both():
        return run(None), run(110.0)

    free, clamped = bench_once(run_both)
    print(
        f"\nunclamped: {free.elapsed_s:.2f}s at {free.avg_power_w:.1f}W | "
        f"clamped to 110W: {clamped.elapsed_s:.2f}s at {clamped.avg_power_w:.1f}W"
    )
    assert clamped.avg_power_w < free.avg_power_w
    assert clamped.avg_power_w < 110.0 * 1.08
    assert clamped.elapsed_s > free.elapsed_s  # the bound costs time


def test_bench_autotune(bench_once):
    result = bench_once(tune_threads, "lulesh", "gcc",
                        threads=(1, 2, 4, 8, 12, 16))
    print()
    print(result.format())
    assert result.best_for(Objective.ENERGY).threads < result.best_for(
        Objective.TIME
    ).threads


def test_bench_cluster(bench_once):
    result = bench_once(
        run_cluster,
        [("bots-health", "maestro"), ("bots-strassen", "maestro"), ("lulesh", "maestro")],
        380.0,
        time_limit_s=300.0,
    )
    print()
    print(result.format())
    assert result.peak_power_w <= 380.0 * 1.10
    assert len(result.rows) == 3
