"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows next to the paper's values.  The measured
quantity (via pytest-benchmark) is the wall time of the regeneration —
i.e. how fast the simulator reproduces that artifact.  Simulations are
deterministic, so a single round suffices.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single deterministic round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark):
    """Fixture wrapper around :func:`run_once`."""
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _run
